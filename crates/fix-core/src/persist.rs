//! Database persistence: one self-contained file holding the collection
//! (documents + shared label table) and the index (options, edge
//! dictionary, B-tree entries, clustered copies).
//!
//! # Format v3 (current)
//!
//! A v3 file is a magic header, seven mandatory *frames* in fixed order,
//! an optional delta frame (id 7, present only when the index carries a
//! non-empty delta run — see `delta.rs`), and a footer (see `DESIGN.md`
//! §12):
//!
//! ```text
//! "FIXDB\0\x03\0"
//! frame × 7:  id:u8  len:u64le  payload[len]  crc32(payload):u32le
//! [frame 7:   same framing, delta run + clustered copies]
//! footer:     0xFF   offset:u64le  crc32(file[..offset]):u32le
//! ```
//!
//! Every length is validated against the bytes actually remaining before
//! anything is allocated, every payload carries its own CRC-32, and the
//! footer checksums the whole file — a flipped bit or a truncation
//! surfaces as a structured [`FixError::Corrupt`] naming the section at
//! fault, never as a panic or an over-allocation. Files written by the
//! previous format (v2 magic, unframed) still load; [`save_v2_unchecked`]
//! keeps a writer for them so compatibility stays testable.
//!
//! # Atomicity
//!
//! Saves go through a sibling temp file: write + flush + `fsync`, then
//! `rename` over the target, then `fsync` the directory. A crash (or an
//! injected [`FaultPlan`] — see [`save_with_faults`]) at *any* write
//! boundary leaves either the complete old database or the complete new
//! one, never a torn mix.
//!
//! The B-tree is persisted *logically* (sorted key/value pairs) and
//! rebuilt by a bottom-up bulk load, which keeps the format independent
//! of page-layout details. Clustered heap records are replayed in
//! insertion order *before* the B-tree load — the same allocation order
//! construction uses — which reproduces identical record ids (the heap's
//! append is deterministic).

use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fix_btree::BTree;
use fix_spectral::{EdgeEncoder, FeatureMode};
use fix_storage::{crc32, BufferPool, Crc32, FaultFile, FaultPlan, HeapFile};
use fix_xml::LabelId;

use crate::builder::{BuildStats, FixIndex};
use crate::collection::{Collection, DocId};
use crate::delta::DeltaIndex;
use crate::error::FixError;
use crate::key::KEY_LEN;
use crate::options::{FixOptions, RefineOp};
use crate::values::ValueHasher;

const MAGIC_V2: &[u8; 8] = b"FIXDB\x00\x02\x00";
const MAGIC_V3: &[u8; 8] = b"FIXDB\x00\x03\x00";
/// Section id of the footer pseudo-frame.
const FOOTER_ID: u8 = 0xFF;
/// Footer wire size: id byte + u64 offset + u32 file CRC.
const FOOTER_LEN: usize = 13;
/// Frame header wire size: id byte + u64 payload length.
const FRAME_HEADER_LEN: usize = 9;

/// Plausibility caps applied to decoded options before they can size
/// anything. A corrupted field that slips past the CRCs (or arrives via a
/// legacy v2 file, which has none) is rejected here instead of driving an
/// allocation.
const MAX_DEPTH_LIMIT: usize = 1 << 16;
const MAX_POOL_PAGES: usize = 1 << 28;
const MAX_MAX_EDGES: usize = 1 << 28;

/// The payload-bearing sections. The first seven are mandatory and appear
/// in file order; [`Section::Delta`] is an *optional* trailing frame,
/// written only when the index carries a non-empty delta run — so files
/// saved without post-build inserts stay byte-identical to the original
/// v3 layout, and old readers that stop after seven frames never see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Options = 0,
    Labels = 1,
    Documents = 2,
    Edges = 3,
    BTree = 4,
    Heap = 5,
    Tombstones = 6,
    Delta = 7,
}

impl Section {
    const ALL: [Section; 7] = [
        Section::Options,
        Section::Labels,
        Section::Documents,
        Section::Edges,
        Section::BTree,
        Section::Heap,
        Section::Tombstones,
    ];

    fn id(self) -> u8 {
        self as u8
    }

    fn name(self) -> &'static str {
        match self {
            Section::Options => "options",
            Section::Labels => "labels",
            Section::Documents => "documents",
            Section::Edges => "edges",
            Section::BTree => "btree",
            Section::Heap => "heap",
            Section::Tombstones => "tombstones",
            Section::Delta => "delta",
        }
    }
}

fn corrupt(section: &str, detail: impl Into<String>) -> FixError {
    FixError::Corrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Encodes one section's payload. `v3` selects the current options layout
/// (which appends the parse depth limit); every other section is
/// byte-identical across v2 and v3, only the framing differs.
fn encode_section(s: Section, coll: &Collection, idx: &FixIndex, v3: bool) -> Vec<u8> {
    let mut out = Vec::new();
    match s {
        Section::Options => {
            let o = idx.options();
            put_u32(&mut out, o.depth_limit as u32);
            put_u32(&mut out, u32::from(o.clustered));
            put_u32(&mut out, o.value_beta.unwrap_or(0));
            put_u32(&mut out, o.pool_pages as u32);
            put_u32(
                &mut out,
                match o.extractor.mode {
                    FeatureMode::SymmetricNorm => 0,
                    FeatureMode::SkewSpectral => 1,
                },
            );
            put_u32(&mut out, o.extractor.max_edges as u32);
            let flags = u32::from(o.extended_features) | (u32::from(o.edge_bloom) << 1);
            put_u32(&mut out, flags);
            if v3 {
                // u32::MAX encodes "unlimited" (usize::MAX); saturate.
                let d = u32::try_from(o.max_parse_depth).unwrap_or(u32::MAX);
                put_u32(&mut out, d);
            }
        }
        Section::Labels => {
            // Ids are the positions.
            put_u32(&mut out, coll.labels.len() as u32);
            for (_, name) in coll.labels.iter() {
                put_bytes(&mut out, name.as_bytes());
            }
        }
        Section::Documents => {
            // Serialized XML in id order.
            put_u32(&mut out, coll.len() as u32);
            for (_, d) in coll.iter() {
                put_bytes(&mut out, fix_xml::to_xml_string(d, &coll.labels).as_bytes());
            }
        }
        Section::Edges => {
            // Edge dictionary (sorted for determinism).
            let mut edges: Vec<((LabelId, LabelId), f64)> = idx.encoder.iter().collect();
            edges.sort_by_key(|((a, b), _)| (a.0, b.0));
            put_u32(&mut out, edges.len() as u32);
            for ((a, b), weight) in edges {
                put_u32(&mut out, a.0);
                put_u32(&mut out, b.0);
                put_f64(&mut out, weight);
            }
        }
        Section::BTree => {
            // Entries in key order.
            put_u64(&mut out, idx.btree.len());
            for (k, v) in idx.btree.iter() {
                out.extend_from_slice(&k);
                put_u64(&mut out, v);
            }
        }
        Section::Heap => {
            // Clustered heap records in insertion order; u64::MAX marks
            // "no clustered heap".
            match &idx.clustered {
                Some(heap) => {
                    put_u64(&mut out, heap.len());
                    for (_, record) in heap.scan() {
                        put_bytes(&mut out, &record);
                    }
                }
                None => put_u64(&mut out, u64::MAX),
            }
        }
        Section::Tombstones => {
            let mut removed: Vec<u32> = idx.removed.iter().map(|d| d.0).collect();
            removed.sort_unstable();
            put_u32(&mut out, removed.len() as u32);
            for d in removed {
                put_u32(&mut out, d);
            }
        }
        Section::Delta => {
            // Delta run entries in key order, then (for clustered
            // indexes) the copy records the run's values index into;
            // u64::MAX marks "no copy records" (unclustered).
            put_u64(&mut out, idx.delta.len());
            for (k, v) in idx.delta.iter() {
                out.extend_from_slice(k);
                put_u64(&mut out, v);
            }
            match idx.delta.copies() {
                Some(copies) => {
                    put_u64(&mut out, copies.len() as u64);
                    for record in copies {
                        put_bytes(&mut out, record);
                    }
                }
                None => put_u64(&mut out, u64::MAX),
            }
        }
    }
    out
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked cursor over an in-memory byte slice. Every read —
/// including the length-prefixed [`SliceReader::bytes`] — validates
/// against the bytes actually remaining, so a corrupted length field
/// yields an error string (wrapped into [`FixError::Corrupt`] by the
/// caller), never an attempt to allocate the claimed size.
struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if n > self.remaining() {
            return Err(format!(
                "need {n} bytes at offset {:#x}, only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u64-length-prefixed byte string, length validated first.
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let at = self.pos;
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(format!(
                "length prefix {n} at offset {at:#x} exceeds the {} bytes remaining",
                self.remaining()
            ));
        }
        self.take(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let at = self.pos;
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| format!("{what} at offset {at:#x} is not valid UTF-8"))
    }
}

fn decode_options(r: &mut SliceReader, v3: bool) -> Result<FixOptions, String> {
    let depth_limit = r.u32()? as usize;
    if depth_limit > MAX_DEPTH_LIMIT {
        return Err(format!("implausible depth limit {depth_limit}"));
    }
    let clustered = r.u32()? != 0;
    let value_beta = match r.u32()? {
        0 => None,
        b => Some(b),
    };
    let pool_pages = r.u32()? as usize;
    if pool_pages > MAX_POOL_PAGES {
        return Err(format!("implausible buffer-pool size {pool_pages}"));
    }
    let mode = match r.u32()? {
        0 => FeatureMode::SymmetricNorm,
        1 => FeatureMode::SkewSpectral,
        m => return Err(format!("unknown feature mode {m}")),
    };
    let max_edges = r.u32()? as usize;
    if max_edges > MAX_MAX_EDGES {
        return Err(format!("implausible max-edges threshold {max_edges}"));
    }
    let flags = r.u32()?;
    let max_parse_depth = if v3 {
        match r.u32()? {
            u32::MAX => usize::MAX,
            0 => return Err("zero parse depth limit".to_string()),
            d => d as usize,
        }
    } else {
        fix_xml::DEFAULT_MAX_DEPTH
    };
    let mut opts = if depth_limit == 0 {
        FixOptions::collection()
    } else {
        FixOptions::large_document(depth_limit)
    };
    opts.clustered = clustered;
    opts.value_beta = value_beta;
    opts.pool_pages = pool_pages.max(1);
    opts.extractor.mode = mode;
    opts.extractor.max_edges = max_edges;
    opts.extended_features = flags & 1 != 0;
    opts.edge_bloom = flags & 2 != 0;
    opts.refine = RefineOp::default();
    opts.max_parse_depth = max_parse_depth;
    Ok(opts)
}

fn decode_labels(r: &mut SliceReader) -> Result<Vec<String>, String> {
    let n = r.u32()?;
    let mut labels = Vec::new();
    for _ in 0..n {
        labels.push(r.string("label")?);
    }
    Ok(labels)
}

fn decode_documents(r: &mut SliceReader) -> Result<Vec<String>, String> {
    let n = r.u32()?;
    let mut docs = Vec::new();
    for _ in 0..n {
        docs.push(r.string("document")?);
    }
    Ok(docs)
}

fn decode_edges(r: &mut SliceReader) -> Result<Vec<(LabelId, LabelId, f64)>, String> {
    let n = r.u32()?;
    let mut edges = Vec::new();
    for _ in 0..n {
        let a = LabelId(r.u32()?);
        let b = LabelId(r.u32()?);
        let w = r.f64()?;
        edges.push((a, b, w));
    }
    Ok(edges)
}

fn decode_btree(r: &mut SliceReader) -> Result<Vec<(Vec<u8>, u64)>, String> {
    let n = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..n {
        let k = r.take(KEY_LEN)?.to_vec();
        let v = r.u64()?;
        entries.push((k, v));
    }
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err("B-tree entries out of order".to_string());
    }
    Ok(entries)
}

fn decode_heap(r: &mut SliceReader) -> Result<Option<Vec<Vec<u8>>>, String> {
    let n = r.u64()?;
    if n == u64::MAX {
        return Ok(None);
    }
    let mut records = Vec::new();
    for _ in 0..n {
        records.push(r.bytes()?.to_vec());
    }
    Ok(Some(records))
}

fn decode_tombstones(r: &mut SliceReader) -> Result<Vec<u32>, String> {
    let n = r.u32()?;
    let mut removed = Vec::new();
    for _ in 0..n {
        removed.push(r.u32()?);
    }
    Ok(removed)
}

/// Decoded delta content: key-ordered run entries plus (for clustered
/// indexes) the copy records the values index into.
type DeltaParts = (Vec<(Vec<u8>, u64)>, Option<Vec<Vec<u8>>>);

fn decode_delta(r: &mut SliceReader) -> Result<DeltaParts, String> {
    let n = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..n {
        let k = r.take(KEY_LEN)?.to_vec();
        let v = r.u64()?;
        entries.push((k, v));
    }
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err("delta entries out of order".to_string());
    }
    let m = r.u64()?;
    let copies = if m == u64::MAX {
        None
    } else {
        let mut records = Vec::new();
        for _ in 0..m {
            records.push(r.bytes()?.to_vec());
        }
        Some(records)
    };
    if let Some(c) = &copies {
        if entries.iter().any(|&(_, v)| v >= c.len() as u64) {
            return Err("delta value points past the copy records".to_string());
        }
    }
    Ok((entries, copies))
}

/// Runs a decoder over a whole payload, requiring full consumption.
fn decode_whole<'a, T>(
    payload: &'a [u8],
    f: impl FnOnce(&mut SliceReader<'a>) -> Result<T, String>,
) -> Result<T, String> {
    let mut r = SliceReader::new(payload);
    let v = f(&mut r)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes in section", r.remaining()));
    }
    Ok(v)
}

fn decode_payload<'a, T>(
    s: Section,
    payload: &'a [u8],
    f: impl FnOnce(&mut SliceReader<'a>) -> Result<T, String>,
) -> Result<T, FixError> {
    decode_whole(payload, f).map_err(|d| corrupt(s.name(), d))
}

/// Structure-checks one payload without building anything (the verify
/// path's per-section decode pass).
fn decode_check(s: Section, payload: &[u8], v3: bool) -> Result<(), String> {
    match s {
        Section::Options => decode_whole(payload, |r| decode_options(r, v3)).map(drop),
        Section::Labels => decode_whole(payload, decode_labels).map(drop),
        Section::Documents => decode_whole(payload, decode_documents).map(drop),
        Section::Edges => decode_whole(payload, decode_edges).map(drop),
        Section::BTree => decode_whole(payload, decode_btree).map(drop),
        Section::Heap => decode_whole(payload, decode_heap).map(drop),
        Section::Tombstones => decode_whole(payload, decode_tombstones).map(drop),
        Section::Delta => decode_whole(payload, decode_delta).map(drop),
    }
}

/// The fully decoded (but not yet materialized) content of a database
/// file.
struct Decoded {
    opts: FixOptions,
    labels: Vec<String>,
    docs: Vec<String>,
    edges: Vec<(LabelId, LabelId, f64)>,
    entries: Vec<(Vec<u8>, u64)>,
    heap: Option<Vec<Vec<u8>>>,
    tombstones: Vec<u32>,
    /// The optional delta frame's content; `None` for files written
    /// without one (v2, or v3 with an empty delta at save time).
    delta: Option<DeltaParts>,
}

/// Materializes decoded content into a live collection + index.
fn assemble(d: Decoded) -> Result<(Collection, FixIndex), FixError> {
    // Label table: intern in saved order so ids are reproduced exactly.
    let mut coll = Collection::new();
    for (i, name) in d.labels.iter().enumerate() {
        let id = coll.labels.intern(name);
        if id.0 as usize != i {
            return Err(corrupt("labels", "label table out of order"));
        }
    }
    // Documents were depth-checked when first added; never reject
    // previously persisted data on reload.
    for xml in &d.docs {
        coll.add_xml_limited(xml, usize::MAX)
            .map_err(|e| corrupt("documents", format!("document reparse: {e}")))?;
    }

    let mut encoder = EdgeEncoder::new();
    for (a, b, w) in d.edges {
        encoder.restore(a, b, w);
    }

    // Replay heap appends *before* loading the B-tree: construction
    // allocates heap pages first and B-tree pages second, so replaying in
    // the same order reproduces the record ids the stored B-tree values
    // point at.
    let pool = Arc::new(BufferPool::in_memory(d.opts.pool_pages));
    let clustered_heap = d.heap.map(|records| {
        let mut heap = HeapFile::new(Arc::clone(&pool));
        for record in &records {
            heap.append(record);
        }
        heap
    });
    let btree = BTree::bulk_load(Arc::clone(&pool), KEY_LEN, d.entries);

    let delta = match d.delta {
        None => DeltaIndex::new(d.opts.clustered),
        Some((entries, copies)) => {
            if copies.is_some() != d.opts.clustered {
                return Err(corrupt(
                    "delta",
                    "delta clustering disagrees with the options section",
                ));
            }
            DeltaIndex::from_sorted(entries, copies)
        }
    };

    let stats = BuildStats {
        entries: btree.len() + delta.len(),
        btree_bytes: btree.stats().size_bytes,
        clustered_bytes: clustered_heap
            .as_ref()
            .map(HeapFile::size_bytes)
            .unwrap_or(0),
        ..Default::default()
    };
    let mut removed = std::collections::HashSet::new();
    for t in d.tombstones {
        removed.insert(DocId(t));
    }

    let hasher = d.opts.value_beta.map(ValueHasher::new);
    Ok((
        coll,
        FixIndex {
            opts: d.opts,
            btree,
            encoder,
            hasher,
            clustered: clustered_heap,
            pool,
            stats,
            incremental: None,
            delta,
            removed,
            compactions: 0,
            compact_ns: 0,
        },
    ))
}

// ----------------------------------------------------------- frame walking

/// One parsed v3 frame.
struct Frame<'a> {
    offset: usize,
    payload: &'a [u8],
    crc_ok: bool,
    stored: u32,
    computed: u32,
}

fn checksum_detail(fr: &Frame) -> String {
    format!(
        "checksum mismatch at offset {:#x} (stored {:#010x}, computed {:#010x})",
        fr.offset, fr.stored, fr.computed
    )
}

/// Cursor over the frame sequence of a v3 file. Structural errors
/// (truncated header, wrong section id, length overrunning the file) are
/// reported with byte offsets; CRC state is reported per frame so callers
/// choose whether to stop (load) or record and continue (verify).
struct FrameWalk<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> FrameWalk<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 8 }
    }

    fn next(&mut self, expect: Section) -> Result<Frame<'a>, String> {
        let offset = self.pos;
        let avail = self.data.len() - self.pos;
        if avail < FRAME_HEADER_LEN {
            return Err(format!(
                "truncated frame header at offset {offset:#x} ({avail} bytes remain, need {FRAME_HEADER_LEN})"
            ));
        }
        let id = self.data[self.pos];
        if id != expect.id() {
            return Err(format!(
                "expected section id {} at offset {offset:#x}, found {id}",
                expect.id()
            ));
        }
        let len = u64::from_le_bytes(self.data[self.pos + 1..self.pos + 9].try_into().unwrap());
        let body = avail - FRAME_HEADER_LEN;
        if len > body.saturating_sub(4) as u64 {
            return Err(format!(
                "section length {len} at offset {offset:#x} overruns the file"
            ));
        }
        let start = self.pos + FRAME_HEADER_LEN;
        let n = len as usize;
        let payload = &self.data[start..start + n];
        let stored = u32::from_le_bytes(self.data[start + n..start + n + 4].try_into().unwrap());
        let computed = crc32(payload);
        self.pos = start + n + 4;
        Ok(Frame {
            offset,
            payload,
            crc_ok: stored == computed,
            stored,
            computed,
        })
    }
}

fn check_footer(data: &[u8], pos: usize) -> Result<(), String> {
    let rest = &data[pos..];
    if rest.len() != FOOTER_LEN {
        return Err(format!(
            "expected a {FOOTER_LEN}-byte footer at offset {pos:#x}, found {} bytes",
            rest.len()
        ));
    }
    if rest[0] != FOOTER_ID {
        return Err(format!(
            "bad footer marker {:#04x} at offset {pos:#x}",
            rest[0]
        ));
    }
    let off = u64::from_le_bytes(rest[1..9].try_into().unwrap());
    if off != pos as u64 {
        return Err(format!(
            "footer offset field {off:#x} does not match footer position {pos:#x}"
        ));
    }
    let stored = u32::from_le_bytes(rest[9..13].try_into().unwrap());
    let computed = crc32(&data[..pos]);
    if stored != computed {
        return Err(format!(
            "file checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        ));
    }
    Ok(())
}

// ------------------------------------------------------------------ loading

pub(crate) fn load_impl(path: &Path) -> Result<(Collection, FixIndex), FixError> {
    let data = std::fs::read(path)?;
    load_bytes(&data)
}

pub(crate) fn load_bytes(data: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    if data.len() < 8 {
        return Err(corrupt(
            "header",
            format!(
                "file is {} bytes, shorter than the 8-byte magic",
                data.len()
            ),
        ));
    }
    match &data[..8] {
        m if m == MAGIC_V3 => load_v3(data),
        m if m == MAGIC_V2 => load_v2(&data[8..]),
        _ => Err(corrupt("header", "bad magic")),
    }
}

fn load_v3(data: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    let mut walk = FrameWalk::new(data);
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(Section::ALL.len());
    for s in Section::ALL {
        let fr = walk.next(s).map_err(|d| corrupt(s.name(), d))?;
        if !fr.crc_ok {
            return Err(corrupt(s.name(), checksum_detail(&fr)));
        }
        payloads.push(fr.payload);
    }
    // The delta frame is optional: peek for its id before the footer.
    let delta = if data.get(walk.pos) == Some(&Section::Delta.id()) {
        let s = Section::Delta;
        let fr = walk.next(s).map_err(|d| corrupt(s.name(), d))?;
        if !fr.crc_ok {
            return Err(corrupt(s.name(), checksum_detail(&fr)));
        }
        Some(decode_payload(s, fr.payload, decode_delta)?)
    } else {
        None
    };
    check_footer(data, walk.pos).map_err(|d| corrupt("footer", d))?;

    let d = Decoded {
        opts: decode_payload(Section::Options, payloads[0], |r| decode_options(r, true))?,
        labels: decode_payload(Section::Labels, payloads[1], decode_labels)?,
        docs: decode_payload(Section::Documents, payloads[2], decode_documents)?,
        edges: decode_payload(Section::Edges, payloads[3], decode_edges)?,
        entries: decode_payload(Section::BTree, payloads[4], decode_btree)?,
        heap: decode_payload(Section::Heap, payloads[5], decode_heap)?,
        tombstones: decode_payload(Section::Tombstones, payloads[6], decode_tombstones)?,
        delta,
    };
    assemble(d)
}

/// Loads the legacy unframed v2 layout (`body` excludes the magic).
/// Sections decode sequentially with the same bounded readers; trailing
/// bytes are tolerated (v2 had no footer to delimit the content).
fn load_v2(body: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    let mut r = SliceReader::new(body);
    let d = Decoded {
        opts: decode_options(&mut r, false).map_err(|d| corrupt("options", d))?,
        labels: decode_labels(&mut r).map_err(|d| corrupt("labels", d))?,
        docs: decode_documents(&mut r).map_err(|d| corrupt("documents", d))?,
        edges: decode_edges(&mut r).map_err(|d| corrupt("edges", d))?,
        entries: decode_btree(&mut r).map_err(|d| corrupt("btree", d))?,
        heap: decode_heap(&mut r).map_err(|d| corrupt("heap", d))?,
        tombstones: decode_tombstones(&mut r).map_err(|d| corrupt("tombstones", d))?,
        delta: None,
    };
    assemble(d)
}

// ------------------------------------------------------------------- saving

/// Byte counter + running CRC over everything written; the footer's
/// offset and file checksum fall out of the state at footer time.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
    count: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
            count: 0,
        }
    }

    fn put(&mut self, b: &[u8]) -> io::Result<()> {
        self.inner.write_all(b)?;
        self.crc.update(b);
        self.count += b.len() as u64;
        Ok(())
    }

    fn into_inner(self) -> W {
        self.inner
    }
}

fn write_v3<W: Write>(w: &mut CrcWriter<W>, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    w.put(MAGIC_V3)?;
    let mut sections: Vec<Section> = Section::ALL.to_vec();
    // The delta frame is written only when there is delta content, so
    // delta-free files stay byte-identical to the original v3 layout.
    if !idx.delta.is_empty() {
        sections.push(Section::Delta);
    }
    for s in sections {
        let payload = encode_section(s, coll, idx, true);
        w.put(&[s.id()])?;
        w.put(&(payload.len() as u64).to_le_bytes())?;
        w.put(&payload)?;
        w.put(&crc32(&payload).to_le_bytes())?;
    }
    // Snapshot offset + file CRC *before* the footer's own bytes.
    let offset = w.count;
    let crc = w.crc.finalize();
    w.put(&[FOOTER_ID])?;
    w.put(&offset.to_le_bytes())?;
    w.put(&crc.to_le_bytes())
}

fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "fixdb".to_string());
    path.with_file_name(format!("{name}.tmp{}", std::process::id()))
}

/// Fsyncs the directory holding `path` so the rename itself is durable.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

fn write_tmp(
    tmp: &Path,
    coll: &Collection,
    idx: &FixIndex,
    plan: Option<FaultPlan>,
) -> io::Result<()> {
    let file = std::fs::File::create(tmp)?;
    let mut w = CrcWriter::new(FaultFile::new(io::BufWriter::new(&file), plan));
    write_v3(&mut w, coll, idx)?;
    let mut fault = w.into_inner();
    fault.flush()?;
    drop(fault);
    file.sync_all()
}

pub(crate) fn save_impl(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    save_with_faults(path, coll, idx, None)
}

/// The atomic save, with an optional injected write fault (the
/// crash-matrix test hook; `None` is the production path). Protocol:
/// write a sibling temp file, flush, `fsync`, `rename` over `path`,
/// `fsync` the directory. On any failure the temp file is removed and
/// whatever previously lived at `path` is untouched.
pub fn save_with_faults(
    path: &Path,
    coll: &Collection,
    idx: &FixIndex,
    plan: Option<FaultPlan>,
) -> io::Result<()> {
    let tmp = tmp_path(path);
    if let Err(e) = write_tmp(&tmp, coll, idx, plan) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path)
}

/// Writes the legacy v2 layout: no frames, no checksums, no atomicity.
/// Kept so the v2 compatibility path stays testable against genuinely
/// old-format files; never used by the production save.
pub fn save_v2_unchecked(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    for s in Section::ALL {
        out.extend_from_slice(&encode_section(s, coll, idx, false));
    }
    std::fs::write(path, out)
}

// ------------------------------------------------------------------- verify

/// Health of one verified section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// Frame intact: checksum matches and the payload decodes.
    Ok,
    /// The section failed validation; the string says how and where.
    Corrupt(String),
}

/// One section's verification outcome (a row of `fixdb verify` output).
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Section name (`"options"`, …, `"footer"`, or `"header"`/`"file"`
    /// pseudo-sections).
    pub section: String,
    /// Byte offset of the section's frame in the file.
    pub offset: u64,
    /// Payload length in bytes (0 when the frame itself is unreadable).
    pub len: u64,
    /// Verification outcome.
    pub status: SectionStatus,
}

/// The full fsck report for one database file (see [`verify_file`]).
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Format version: 3, 2 (legacy), or 0 (not a FIX database).
    pub version: u8,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Per-section outcomes, in file order.
    pub sections: Vec<SectionReport>,
}

impl VerifyReport {
    /// True when every section verified clean.
    pub fn is_ok(&self) -> bool {
        self.corrupt_count() == 0
    }

    /// Number of sections that failed verification.
    pub fn corrupt_count(&self) -> usize {
        self.sections
            .iter()
            .filter(|s| matches!(s.status, SectionStatus::Corrupt(_)))
            .count()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.version {
            3 => writeln!(f, "format v3, {} bytes", self.file_len)?,
            2 => writeln!(
                f,
                "format v2 (legacy, unchecksummed), {} bytes",
                self.file_len
            )?,
            _ => writeln!(f, "not a FIX database ({} bytes)", self.file_len)?,
        }
        for s in &self.sections {
            match &s.status {
                SectionStatus::Ok => writeln!(
                    f,
                    "  {:<10} @{:#08x} {:>10} B  ok",
                    s.section, s.offset, s.len
                )?,
                SectionStatus::Corrupt(d) => writeln!(
                    f,
                    "  {:<10} @{:#08x} {:>10} B  CORRUPT: {d}",
                    s.section, s.offset, s.len
                )?,
            }
        }
        match self.corrupt_count() {
            0 => write!(f, "ok"),
            n => write!(f, "{n} corrupt section(s)"),
        }
    }
}

/// Verifies a database file without loading it into memory structures:
/// walks every frame, checks every checksum and every decodable length,
/// and reports per-section status with byte offsets. I/O errors reading
/// the file surface as `Err`; corruption is *data*, not an error.
pub fn verify_file(path: &Path) -> io::Result<VerifyReport> {
    let data = std::fs::read(path)?;
    Ok(verify_bytes(&data))
}

/// [`verify_file`] over an in-memory image.
pub fn verify_bytes(data: &[u8]) -> VerifyReport {
    let file_len = data.len() as u64;
    if data.len() >= 8 && &data[..8] == MAGIC_V3 {
        return verify_v3(data);
    }
    if data.len() >= 8 && &data[..8] == MAGIC_V2 {
        let status = match load_v2(&data[8..]) {
            Ok(_) => ("file".to_string(), SectionStatus::Ok),
            Err(FixError::Corrupt { section, detail }) => (section, SectionStatus::Corrupt(detail)),
            Err(e) => ("file".to_string(), SectionStatus::Corrupt(e.to_string())),
        };
        return VerifyReport {
            version: 2,
            file_len,
            sections: vec![SectionReport {
                section: status.0,
                offset: 8,
                len: file_len.saturating_sub(8),
                status: status.1,
            }],
        };
    }
    let detail = if data.len() < 8 {
        format!(
            "file is {} bytes, shorter than the 8-byte magic",
            data.len()
        )
    } else {
        "bad magic".to_string()
    };
    VerifyReport {
        version: 0,
        file_len,
        sections: vec![SectionReport {
            section: "header".to_string(),
            offset: 0,
            len: file_len.min(8),
            status: SectionStatus::Corrupt(detail),
        }],
    }
}

fn verify_v3(data: &[u8]) -> VerifyReport {
    let mut sections = Vec::new();
    let mut walk = FrameWalk::new(data);
    let mut structural_failure = false;
    for s in Section::ALL {
        let offset = walk.pos as u64;
        match walk.next(s) {
            Err(d) => {
                // The walk can't resync past a broken frame header; later
                // sections are unreachable.
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                structural_failure = true;
                break;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = decode_check(s, fr.payload, true) {
                    SectionStatus::Corrupt(d)
                } else {
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure && data.get(walk.pos) == Some(&Section::Delta.id()) {
        let s = Section::Delta;
        let offset = walk.pos as u64;
        match walk.next(s) {
            Err(d) => {
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                structural_failure = true;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = decode_check(s, fr.payload, true) {
                    SectionStatus::Corrupt(d)
                } else {
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure {
        let pos = walk.pos;
        let status = match check_footer(data, pos) {
            Ok(()) => SectionStatus::Ok,
            Err(d) => SectionStatus::Corrupt(d),
        };
        sections.push(SectionReport {
            section: "footer".to_string(),
            offset: pos as u64,
            len: (data.len() - pos) as u64,
            status,
        });
    }
    VerifyReport {
        version: 3,
        file_len: data.len() as u64,
        sections,
    }
}

// ------------------------------------------------------------------ salvage

/// What [`salvage_file`] recovered.
#[derive(Debug, Clone, Default)]
pub struct SalvageSummary {
    /// Documents recovered and re-indexed.
    pub documents: usize,
    /// Recovered document payloads that no longer parse (skipped).
    pub skipped_documents: usize,
    /// Tombstones carried over.
    pub tombstones: usize,
    /// Whether the options section survived (defaults are used otherwise).
    pub options_recovered: bool,
    /// Sections dropped as corrupt or unreachable, with reasons.
    pub dropped: Vec<String>,
    /// Index entries in the rebuilt output database.
    pub entries: u64,
}

impl fmt::Display for SalvageSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "salvaged {} document(s) ({} unparseable skipped), {} tombstone(s); options {}; index rebuilt with {} entries",
            self.documents,
            self.skipped_documents,
            self.tombstones,
            if self.options_recovered {
                "recovered"
            } else {
                "defaulted"
            },
            self.entries
        )?;
        for d in &self.dropped {
            writeln!(f, "  dropped {d}")?;
        }
        Ok(())
    }
}

/// Recovers what it can from a damaged database at `src` into a fresh,
/// fully consistent database at `dst`.
///
/// Source-of-truth sections (options, documents, tombstones) are kept
/// where their frames verify; the derived sections (labels, edge
/// dictionary, B-tree, clustered heap) are *always* rebuilt from the
/// recovered documents — carrying over a derived section whose inputs may
/// have changed would produce a subtly inconsistent index, so salvage
/// trades a rebuild for a guarantee.
pub fn salvage_file(src: &Path, dst: &Path) -> Result<SalvageSummary, FixError> {
    let data = std::fs::read(src)?;
    if data.len() < 8 {
        return Err(corrupt(
            "header",
            format!(
                "file is {} bytes, shorter than the 8-byte magic",
                data.len()
            ),
        ));
    }
    let (opts, docs, tombstones, mut summary) = match &data[..8] {
        m if m == MAGIC_V3 => salvage_scan_v3(&data),
        m if m == MAGIC_V2 => salvage_scan_v2(&data[8..]),
        _ => return Err(corrupt("header", "bad magic")),
    };

    let mut coll = Collection::new();
    for xml in &docs {
        match coll.add_xml_limited(xml, usize::MAX) {
            Ok(_) => summary.documents += 1,
            Err(_) => summary.skipped_documents += 1,
        }
    }
    let mut idx = FixIndex::build(&mut coll, opts);
    for t in &tombstones {
        if (*t as usize) < coll.len() {
            idx.removed.insert(DocId(*t));
            summary.tombstones += 1;
        }
    }
    summary.entries = idx.btree.len();
    save_impl(dst, &coll, &idx)?;
    Ok(summary)
}

type SalvageScan = (FixOptions, Vec<String>, Vec<u32>, SalvageSummary);

fn salvage_scan_v3(data: &[u8]) -> SalvageScan {
    let mut summary = SalvageSummary::default();
    let mut opts = None;
    let mut docs = Vec::new();
    let mut tombstones = Vec::new();
    let mut walk = FrameWalk::new(data);
    let mut structural_failure = false;
    for (i, s) in Section::ALL.into_iter().enumerate() {
        match walk.next(s) {
            Err(d) => {
                summary.dropped.push(format!("{}: {d}", s.name()));
                for rest in &Section::ALL[i + 1..] {
                    summary.dropped.push(format!(
                        "{}: unreachable after a structural failure",
                        rest.name()
                    ));
                }
                structural_failure = true;
                break;
            }
            Ok(fr) if !fr.crc_ok => {
                summary
                    .dropped
                    .push(format!("{}: {}", s.name(), checksum_detail(&fr)));
            }
            Ok(fr) => match s {
                Section::Options => match decode_whole(fr.payload, |r| decode_options(r, true)) {
                    Ok(o) => opts = Some(o),
                    Err(d) => summary.dropped.push(format!("options: {d}")),
                },
                Section::Documents => match decode_whole(fr.payload, decode_documents) {
                    Ok(d) => docs = d,
                    Err(d) => summary.dropped.push(format!("documents: {d}")),
                },
                Section::Tombstones => match decode_whole(fr.payload, decode_tombstones) {
                    Ok(t) => tombstones = t,
                    Err(d) => summary.dropped.push(format!("tombstones: {d}")),
                },
                // Derived sections are rebuilt regardless; nothing to keep.
                _ => {}
            },
        }
    }
    if !structural_failure && data.get(walk.pos) == Some(&Section::Delta.id()) {
        // The delta frame is derived content — the documents it indexes
        // are already in the documents section, and salvage rebuilds the
        // whole index from those — so it is never carried over.
        summary
            .dropped
            .push("delta: derived content, rebuilt from documents".to_string());
    }
    summary.options_recovered = opts.is_some();
    (
        opts.unwrap_or_else(FixOptions::collection),
        docs,
        tombstones,
        summary,
    )
}

/// Tolerant scan of a legacy v2 body: sequential, keep-until-first-failure
/// (without checksums there is no way to resync past damage).
fn salvage_scan_v2(body: &[u8]) -> SalvageScan {
    let mut summary = SalvageSummary::default();
    let mut r = SliceReader::new(body);
    let opts = match decode_options(&mut r, false) {
        Ok(o) => Some(o),
        Err(d) => {
            summary.dropped.push(format!("options: {d}"));
            None
        }
    };
    let mut docs = Vec::new();
    if opts.is_some() {
        match decode_labels(&mut r) {
            Ok(_) => {
                // Keep every document that decodes before the first failure.
                match r.u32() {
                    Ok(n) => {
                        for _ in 0..n {
                            match r.string("document") {
                                Ok(s) => docs.push(s),
                                Err(d) => {
                                    summary.dropped.push(format!("documents: {d}"));
                                    break;
                                }
                            }
                        }
                    }
                    Err(d) => summary.dropped.push(format!("documents: {d}")),
                }
            }
            Err(d) => {
                summary.dropped.push(format!("labels: {d}"));
                summary
                    .dropped
                    .push("documents: unreachable after a labels failure".to_string());
            }
        }
    } else {
        summary
            .dropped
            .push("documents: unreachable after an options failure".to_string());
    }
    let mut tombstones = Vec::new();
    if summary.dropped.is_empty() {
        let rest: Result<Vec<u32>, String> = (|| {
            decode_edges(&mut r)?;
            decode_btree(&mut r)?;
            decode_heap(&mut r)?;
            decode_tombstones(&mut r)
        })();
        match rest {
            Ok(t) => tombstones = t,
            Err(d) => summary.dropped.push(format!("tombstones: {d}")),
        }
    } else {
        summary
            .dropped
            .push("tombstones: unreachable in a damaged legacy file".to_string());
    }
    summary.options_recovered = opts.is_some();
    (
        opts.unwrap_or_else(FixOptions::collection),
        docs,
        tombstones,
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FixIndex;
    use fix_storage::FaultKind;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml(
            "<bib><article><author><email/></author><title>holistic</title><ee/></article></bib>",
        )
        .unwrap();
        c.add_xml("<bib><book><author><phone/></author><title>web data</title></book></bib>")
            .unwrap();
        c.add_xml(
            "<bib><article><author><phone/><email/></author><title>joins</title></article></bib>",
        )
        .unwrap();
        c
    }

    fn same_outcomes(a: &(Collection, FixIndex), b: &(Collection, FixIndex), queries: &[&str]) {
        for q in queries {
            let ra = a.1.query(&a.0, q).unwrap();
            let rb = b.1.query(&b.0, q).unwrap();
            assert_eq!(ra.results, rb.results, "results differ on {q}");
            assert_eq!(ra.metrics, rb.metrics, "metrics differ on {q}");
        }
    }

    #[test]
    fn round_trip_unclustered() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("uncl.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.0.len(), 3);
        assert_eq!(loaded.1.entry_count(), idx.entry_count());
        same_outcomes(
            &(coll, idx),
            &loaded,
            &[
                "//article[author]/ee",
                "//author[phone][email]",
                "//book/title",
            ],
        );
    }

    #[test]
    fn round_trip_clustered_with_values() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4)
                .clustered()
                .with_values(16)
                .with_edge_bloom(),
        );
        let path = temp("clust.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert!(loaded.1.options().clustered);
        assert_eq!(loaded.1.options().value_beta, Some(16));
        assert!(loaded.1.options().edge_bloom);
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn collection_mode_round_trip() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::collection());
        let path = temp("coll.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().depth_limit, 0);
        same_outcomes(&(coll, idx), &loaded, &["//article/title", "/bib/book"]);
    }

    #[test]
    fn parse_depth_limit_round_trips() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_max_parse_depth(33),
        );
        let path = temp("depth.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().max_parse_depth, 33);
        // "Unlimited" survives the u32 saturation too.
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_max_parse_depth(usize::MAX),
        );
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().max_parse_depth, usize::MAX);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = temp("bad.fixdb");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(matches!(
            load_impl(&path),
            Err(FixError::Corrupt { section, .. }) if section == "header"
        ));
        std::fs::write(&path, b"FIXDB\x00\x01\x00trunc").unwrap();
        assert!(load_impl(&path).is_err());
        std::fs::write(&path, b"FIX").unwrap();
        assert!(matches!(load_impl(&path), Err(FixError::Corrupt { .. })));
    }

    #[test]
    fn v2_files_still_load() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).clustered().with_values(16),
        );
        let path = temp("legacy.fixdb");
        save_v2_unchecked(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.0.len(), 3);
        // v2 predates the persisted parse-depth knob: the default applies.
        assert_eq!(
            loaded.1.options().max_parse_depth,
            fix_xml::DEFAULT_MAX_DEPTH
        );
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4).clustered());
        let path = temp("flip.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            match load_bytes(&bad) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("flip at {i} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("trunc.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for t in (0..good.len()).step_by(11).chain([good.len() - 1]) {
            match load_bytes(&good[..t]) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("truncation to {t} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("truncation to {t} bytes went undetected"),
            }
        }
    }

    #[test]
    fn verify_names_the_corrupt_section() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("verify.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();

        let clean = verify_bytes(&good);
        assert!(clean.is_ok(), "{clean}");
        assert_eq!(clean.version, 3);
        assert_eq!(clean.sections.len(), 8, "7 sections + footer");

        // Flip one byte inside the documents payload.
        let mut walk = FrameWalk::new(&good);
        walk.next(Section::Options).unwrap();
        walk.next(Section::Labels).unwrap();
        let fr = walk.next(Section::Documents).unwrap();
        let target = fr.offset + FRAME_HEADER_LEN + 3;
        let mut bad = good.clone();
        bad[target] ^= 0xFF;
        let report = verify_bytes(&bad);
        assert!(!report.is_ok());
        // Both the section CRC and the footer's whole-file CRC notice.
        assert_eq!(report.corrupt_count(), 2, "{report}");
        let doc = report
            .sections
            .iter()
            .find(|s| s.section == "documents")
            .unwrap();
        match &doc.status {
            SectionStatus::Corrupt(d) => {
                assert!(d.contains("checksum mismatch"), "{d}");
                assert!(d.contains("0x"), "detail should carry an offset: {d}");
            }
            SectionStatus::Ok => panic!("documents should be corrupt: {report}"),
        }
        assert!(matches!(
            report.sections.last().unwrap().status,
            SectionStatus::Corrupt(_)
        ));
    }

    #[test]
    fn salvage_rebuilds_from_intact_sections() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4).clustered());
        let src = temp("salv-src.fixdb");
        let dst = temp("salv-dst.fixdb");
        save_impl(&src, &coll, &idx).unwrap();
        let good = std::fs::read(&src).unwrap();

        // Corrupt the B-tree frame: load must fail, salvage must recover.
        let mut walk = FrameWalk::new(&good);
        for s in [
            Section::Options,
            Section::Labels,
            Section::Documents,
            Section::Edges,
        ] {
            walk.next(s).unwrap();
        }
        let fr = walk.next(Section::BTree).unwrap();
        let mut bad = good.clone();
        bad[fr.offset + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&src, &bad).unwrap();
        assert!(matches!(
            load_impl(&src),
            Err(FixError::Corrupt { section, .. }) if section == "btree"
        ));

        let summary = salvage_file(&src, &dst).unwrap();
        assert_eq!(summary.documents, 3);
        assert_eq!(summary.skipped_documents, 0);
        assert!(summary.options_recovered);
        assert!(summary.dropped.iter().any(|d| d.starts_with("btree")));
        let recovered = load_impl(&dst).unwrap();
        assert!(verify_file(&dst).unwrap().is_ok());
        same_outcomes(
            &(coll, idx),
            &recovered,
            &["//article[author]/ee", "//author[phone][email]"],
        );
    }

    #[test]
    fn delta_round_trips_and_stays_optional() {
        for clustered in [false, true] {
            let mut coll = sample_collection();
            let mut opts = FixOptions::large_document(4).with_compact_ratio(0.0);
            opts.clustered = clustered;
            let mut idx = FixIndex::build(&mut coll, opts);
            let path = temp(&format!("delta-{clustered}.fixdb"));

            // Empty delta: the file carries no delta frame — byte-identical
            // to the pre-delta v3 layout (8 verify rows: 7 sections+footer).
            save_impl(&path, &coll, &idx).unwrap();
            let report = verify_file(&path).unwrap();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.sections.len(), 8);
            assert!(!report.sections.iter().any(|s| s.section == "delta"));

            // Insert post-build: the save grows an optional delta frame.
            idx.insert_xml(
                &mut coll,
                "<bib><book><author><phone/></author></book></bib>",
            )
            .unwrap();
            idx.insert_xml(
                &mut coll,
                "<bib><article><author><email/></author><ee/></article></bib>",
            )
            .unwrap();
            assert!(idx.delta_len() > 0);
            save_impl(&path, &coll, &idx).unwrap();
            let report = verify_file(&path).unwrap();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.sections.len(), 9, "7 sections + delta + footer");
            assert!(report.sections.iter().any(|s| s.section == "delta"));

            let loaded = load_impl(&path).unwrap();
            assert_eq!(loaded.1.delta_len(), idx.delta_len());
            assert_eq!(loaded.1.entry_count(), idx.entry_count());
            let a: Vec<_> = idx.entries().collect();
            let b: Vec<_> = loaded.1.entries().collect();
            assert_eq!(a, b, "merged entry stream must survive the round trip");
            if clustered {
                assert_eq!(idx.clustered_records(), loaded.1.clustered_records());
            }
            same_outcomes(
                &(coll, idx),
                &loaded,
                &["//article[author]/ee", "//author[email]"],
            );
        }
    }

    #[test]
    fn delta_byte_flips_are_detected() {
        let mut coll = sample_collection();
        let mut idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_compact_ratio(0.0),
        );
        idx.insert_xml(
            &mut coll,
            "<bib><article><author><email/></author><ee/></article></bib>",
        )
        .unwrap();
        let path = temp("delta-flip.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            match load_bytes(&bad) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("flip at {i} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn salvage_treats_the_delta_as_derived() {
        let mut coll = sample_collection();
        let mut idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_compact_ratio(0.0),
        );
        idx.insert_xml(
            &mut coll,
            "<bib><article><author><email/></author><ee/></article></bib>",
        )
        .unwrap();
        let src = temp("delta-salv-src.fixdb");
        let dst = temp("delta-salv-dst.fixdb");
        save_impl(&src, &coll, &idx).unwrap();
        let good = std::fs::read(&src).unwrap();

        // Corrupt the delta frame itself: load fails naming it; salvage
        // recovers every document (the documents section holds them all)
        // and rebuilds a compacted, delta-free index.
        let mut walk = FrameWalk::new(&good);
        for s in Section::ALL {
            walk.next(s).unwrap();
        }
        let fr = walk.next(Section::Delta).unwrap();
        let mut bad = good.clone();
        bad[fr.offset + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&src, &bad).unwrap();
        assert!(matches!(
            load_impl(&src),
            Err(FixError::Corrupt { section, .. }) if section == "delta"
        ));
        let summary = salvage_file(&src, &dst).unwrap();
        assert_eq!(summary.documents, 4, "post-build insert is recovered too");
        let recovered = load_impl(&dst).unwrap();
        assert_eq!(recovered.1.delta_len(), 0);
        assert_eq!(recovered.1.entry_count(), idx.entry_count());
        // Same answers; delta_candidates legitimately differs (the
        // salvaged index folded everything into the base).
        let q = "//article[author]/ee";
        let ra = idx.query(&coll, q).unwrap();
        let rb = recovered.1.query(&recovered.0, q).unwrap();
        assert_eq!(ra.results, rb.results);
        assert_eq!(ra.metrics.candidates, rb.metrics.candidates);
        assert_eq!(ra.metrics.producing, rb.metrics.producing);
        assert_eq!(rb.metrics.delta_candidates, 0);
    }

    #[test]
    fn injected_faults_leave_the_old_database_intact() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("atomic.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let before = std::fs::read(&path).unwrap();

        let mut coll2 = Collection::new();
        coll2.add_xml("<solo><a/></solo>").unwrap();
        let idx2 = FixIndex::build(&mut coll2, FixOptions::collection());
        for kind in [
            FaultKind::Error,
            FaultKind::Torn { keep: 2 },
            FaultKind::Truncate,
        ] {
            let err = save_with_faults(&path, &coll2, &idx2, Some(FaultPlan::new(3, kind)));
            assert!(err.is_err(), "{kind:?} should abort the save");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                before,
                "{kind:?} must leave the old file byte-identical"
            );
            assert!(load_impl(&path).is_ok());
        }
        // And without a fault the new content replaces the old atomically.
        save_with_faults(&path, &coll2, &idx2, None).unwrap();
        assert_eq!(load_impl(&path).unwrap().0.len(), 1);
    }
}
