//! Database persistence: one self-contained file holding the collection
//! (documents + shared label table) and the index (options, edge
//! dictionary, B-tree entries, clustered copies).
//!
//! Two formats are written, selected by [`StorageMode`]: the fully
//! materialized v3 layout below (the default), and the paged v4 layout —
//! a page file with a framed metadata tail, opened without reading the
//! pages — described at the "paged format (v4)" section further down.
//!
//! # Format v3 (default)
//!
//! A v3 file is a magic header, seven mandatory *frames* in fixed order,
//! an optional delta frame (id 7, present only when the index carries a
//! non-empty delta run — see `delta.rs`), and a footer (see `DESIGN.md`
//! §12):
//!
//! ```text
//! "FIXDB\0\x03\0"
//! frame × 7:  id:u8  len:u64le  payload[len]  crc32(payload):u32le
//! [frame 7:   same framing, delta run + clustered copies]
//! footer:     0xFF   offset:u64le  crc32(file[..offset]):u32le
//! ```
//!
//! Every length is validated against the bytes actually remaining before
//! anything is allocated, every payload carries its own CRC-32, and the
//! footer checksums the whole file — a flipped bit or a truncation
//! surfaces as a structured [`FixError::Corrupt`] naming the section at
//! fault, never as a panic or an over-allocation. Files written by the
//! previous format (v2 magic, unframed) still load; [`save_v2_unchecked`]
//! keeps a writer for them so compatibility stays testable.
//!
//! # Atomicity
//!
//! Saves go through a sibling temp file: write + flush + `fsync`, then
//! `rename` over the target, then `fsync` the directory. A crash (or an
//! injected [`FaultPlan`] — see [`save_with_faults`]) at *any* write
//! boundary leaves either the complete old database or the complete new
//! one, never a torn mix.
//!
//! The B-tree is persisted *logically* (sorted key/value pairs) and
//! rebuilt by a bottom-up bulk load, which keeps the format independent
//! of page-layout details. Clustered heap records are replayed in
//! insertion order *before* the B-tree load — the same allocation order
//! construction uses — which reproduces identical record ids (the heap's
//! append is deterministic).

use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fix_btree::BTree;
use fix_spectral::{EdgeEncoder, FeatureMode};
use fix_storage::{
    crc32, BufferPool, Crc32, FaultFile, FaultPlan, FileBackend, HeapDirectory, HeapFile, PageId,
    PageSpace, RecordId, PAGE_SIZE,
};
use fix_xml::LabelId;

use crate::builder::{BuildStats, FixIndex};
use crate::collection::{Collection, DocId};
use crate::delta::DeltaIndex;
use crate::error::FixError;
use crate::key::KEY_LEN;
use crate::options::{FixOptions, RefineOp, StorageMode};
use crate::values::ValueHasher;

const MAGIC_V2: &[u8; 8] = b"FIXDB\x00\x02\x00";
const MAGIC_V3: &[u8; 8] = b"FIXDB\x00\x03\x00";
/// Magic of the paged (v4) format — see the "Format v4" section below.
const MAGIC_V4: &[u8; 8] = b"FIXDB\x00\x04\x00";
/// Section id of the footer pseudo-frame.
const FOOTER_ID: u8 = 0xFF;
/// Footer wire size: id byte + u64 offset + u32 file CRC.
const FOOTER_LEN: usize = 13;
/// Frame header wire size: id byte + u64 payload length.
const FRAME_HEADER_LEN: usize = 9;

/// Plausibility caps applied to decoded options before they can size
/// anything. A corrupted field that slips past the CRCs (or arrives via a
/// legacy v2 file, which has none) is rejected here instead of driving an
/// allocation.
const MAX_DEPTH_LIMIT: usize = 1 << 16;
const MAX_POOL_PAGES: usize = 1 << 28;
const MAX_MAX_EDGES: usize = 1 << 28;

/// The payload-bearing sections. The first seven are mandatory and appear
/// in file order; [`Section::Delta`] is an *optional* trailing frame,
/// written only when the index carries a non-empty delta run — so files
/// saved without post-build inserts stay byte-identical to the original
/// v3 layout, and old readers that stop after seven frames never see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Options = 0,
    Labels = 1,
    Documents = 2,
    Edges = 3,
    BTree = 4,
    Heap = 5,
    Tombstones = 6,
    Delta = 7,
}

impl Section {
    const ALL: [Section; 7] = [
        Section::Options,
        Section::Labels,
        Section::Documents,
        Section::Edges,
        Section::BTree,
        Section::Heap,
        Section::Tombstones,
    ];

    fn id(self) -> u8 {
        self as u8
    }

    fn name(self) -> &'static str {
        match self {
            Section::Options => "options",
            Section::Labels => "labels",
            Section::Documents => "documents",
            Section::Edges => "edges",
            Section::BTree => "btree",
            Section::Heap => "heap",
            Section::Tombstones => "tombstones",
            Section::Delta => "delta",
        }
    }
}

fn corrupt(section: &str, detail: impl Into<String>) -> FixError {
    FixError::Corrupt {
        section: section.to_string(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Encodes one section's payload. `v3` selects the current options layout
/// (which appends the parse depth limit); every other section is
/// byte-identical across v2 and v3, only the framing differs.
fn encode_section(s: Section, coll: &Collection, idx: &FixIndex, v3: bool) -> Vec<u8> {
    let mut out = Vec::new();
    match s {
        Section::Options => {
            let o = idx.options();
            put_u32(&mut out, o.depth_limit as u32);
            put_u32(&mut out, u32::from(o.clustered));
            put_u32(&mut out, o.value_beta.unwrap_or(0));
            put_u32(&mut out, o.pool_pages as u32);
            put_u32(
                &mut out,
                match o.extractor.mode {
                    FeatureMode::SymmetricNorm => 0,
                    FeatureMode::SkewSpectral => 1,
                },
            );
            put_u32(&mut out, o.extractor.max_edges as u32);
            let flags = u32::from(o.extended_features) | (u32::from(o.edge_bloom) << 1);
            put_u32(&mut out, flags);
            if v3 {
                // u32::MAX encodes "unlimited" (usize::MAX); saturate.
                let d = u32::try_from(o.max_parse_depth).unwrap_or(u32::MAX);
                put_u32(&mut out, d);
                // Mutation-policy knobs, appended by current writers in
                // both the v3 and v4 framings. Older files simply end at
                // the parse depth and decode with the process defaults.
                put_u64(&mut out, o.wal_seal_bytes);
                put_u32(&mut out, o.tier_fanout as u32);
                put_f64(&mut out, o.compact_ratio);
            }
        }
        Section::Labels => {
            // Ids are the positions.
            put_u32(&mut out, coll.labels.len() as u32);
            for (_, name) in coll.labels.iter() {
                put_bytes(&mut out, name.as_bytes());
            }
        }
        Section::Documents => {
            // Serialized XML in id order.
            put_u32(&mut out, coll.len() as u32);
            for (_, d) in coll.iter() {
                put_bytes(&mut out, fix_xml::to_xml_string(d, &coll.labels).as_bytes());
            }
        }
        Section::Edges => {
            // Edge dictionary (sorted for determinism).
            let mut edges: Vec<((LabelId, LabelId), f64)> = idx.encoder.iter().collect();
            edges.sort_by_key(|((a, b), _)| (a.0, b.0));
            put_u32(&mut out, edges.len() as u32);
            for ((a, b), weight) in edges {
                put_u32(&mut out, a.0);
                put_u32(&mut out, b.0);
                put_f64(&mut out, weight);
            }
        }
        Section::BTree => {
            // Entries in key order.
            put_u64(&mut out, idx.btree.len());
            for (k, v) in idx.btree.iter() {
                out.extend_from_slice(&k);
                put_u64(&mut out, v);
            }
        }
        Section::Heap => {
            // Clustered heap records in insertion order; u64::MAX marks
            // "no clustered heap".
            match &idx.clustered {
                Some(heap) => {
                    put_u64(&mut out, heap.len());
                    for (_, record) in heap.scan() {
                        put_bytes(&mut out, &record);
                    }
                }
                None => put_u64(&mut out, u64::MAX),
            }
        }
        Section::Tombstones => {
            let mut removed: Vec<u32> = idx.removed.iter().map(|d| d.0).collect();
            removed.sort_unstable();
            put_u32(&mut out, removed.len() as u32);
            for d in removed {
                put_u32(&mut out, d);
            }
        }
        Section::Delta => {
            // Delta run entries in key order, then (for clustered
            // indexes) the copy records the run's values index into;
            // u64::MAX marks "no copy records" (unclustered).
            put_u64(&mut out, idx.delta.len());
            for (k, v) in idx.delta.iter() {
                out.extend_from_slice(k);
                put_u64(&mut out, v);
            }
            match idx.delta.copies() {
                Some(copies) => {
                    put_u64(&mut out, copies.len() as u64);
                    for record in copies {
                        put_bytes(&mut out, record);
                    }
                }
                None => put_u64(&mut out, u64::MAX),
            }
        }
    }
    out
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked cursor over an in-memory byte slice. Every read —
/// including the length-prefixed [`SliceReader::bytes`] — validates
/// against the bytes actually remaining, so a corrupted length field
/// yields an error string (wrapped into [`FixError::Corrupt`] by the
/// caller), never an attempt to allocate the claimed size.
struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if n > self.remaining() {
            return Err(format!(
                "need {n} bytes at offset {:#x}, only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u64-length-prefixed byte string, length validated first.
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let at = self.pos;
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(format!(
                "length prefix {n} at offset {at:#x} exceeds the {} bytes remaining",
                self.remaining()
            ));
        }
        self.take(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let at = self.pos;
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| format!("{what} at offset {at:#x} is not valid UTF-8"))
    }
}

fn decode_options(r: &mut SliceReader, v3: bool) -> Result<FixOptions, String> {
    let depth_limit = r.u32()? as usize;
    if depth_limit > MAX_DEPTH_LIMIT {
        return Err(format!("implausible depth limit {depth_limit}"));
    }
    let clustered = r.u32()? != 0;
    let value_beta = match r.u32()? {
        0 => None,
        b => Some(b),
    };
    let pool_pages = r.u32()? as usize;
    if pool_pages > MAX_POOL_PAGES {
        return Err(format!("implausible buffer-pool size {pool_pages}"));
    }
    let mode = match r.u32()? {
        0 => FeatureMode::SymmetricNorm,
        1 => FeatureMode::SkewSpectral,
        m => return Err(format!("unknown feature mode {m}")),
    };
    let max_edges = r.u32()? as usize;
    if max_edges > MAX_MAX_EDGES {
        return Err(format!("implausible max-edges threshold {max_edges}"));
    }
    let flags = r.u32()?;
    let max_parse_depth = if v3 {
        match r.u32()? {
            u32::MAX => usize::MAX,
            0 => return Err("zero parse depth limit".to_string()),
            d => d as usize,
        }
    } else {
        fix_xml::DEFAULT_MAX_DEPTH
    };
    // Mutation-policy knobs: present in files written by current code,
    // absent in older ones (the section then ends at the parse depth,
    // and `decode_whole`'s full-consumption check still holds either
    // way).
    let policy = if v3 && r.remaining() > 0 {
        let wal_seal_bytes = r.u64()?;
        if wal_seal_bytes == 0 {
            return Err("zero WAL seal threshold".to_string());
        }
        let tier_fanout = r.u32()? as usize;
        if tier_fanout < 2 {
            return Err(format!("implausible tier fanout {tier_fanout}"));
        }
        let compact_ratio = r.f64()?;
        if !compact_ratio.is_finite() || compact_ratio < 0.0 {
            return Err(format!("implausible compaction ratio {compact_ratio}"));
        }
        Some((wal_seal_bytes, tier_fanout, compact_ratio))
    } else {
        None
    };
    let mut opts = if depth_limit == 0 {
        FixOptions::collection()
    } else {
        FixOptions::large_document(depth_limit)
    };
    opts.clustered = clustered;
    opts.value_beta = value_beta;
    opts.pool_pages = pool_pages.max(1);
    opts.extractor.mode = mode;
    opts.extractor.max_edges = max_edges;
    opts.extended_features = flags & 1 != 0;
    opts.edge_bloom = flags & 2 != 0;
    opts.refine = RefineOp::default();
    opts.max_parse_depth = max_parse_depth;
    if let Some((wal_seal_bytes, tier_fanout, compact_ratio)) = policy {
        opts.wal_seal_bytes = wal_seal_bytes;
        opts.tier_fanout = tier_fanout;
        opts.compact_ratio = compact_ratio;
    }
    Ok(opts)
}

fn decode_labels(r: &mut SliceReader) -> Result<Vec<String>, String> {
    let n = r.u32()?;
    let mut labels = Vec::new();
    for _ in 0..n {
        labels.push(r.string("label")?);
    }
    Ok(labels)
}

fn decode_documents(r: &mut SliceReader) -> Result<Vec<String>, String> {
    let n = r.u32()?;
    let mut docs = Vec::new();
    for _ in 0..n {
        docs.push(r.string("document")?);
    }
    Ok(docs)
}

fn decode_edges(r: &mut SliceReader) -> Result<Vec<(LabelId, LabelId, f64)>, String> {
    let n = r.u32()?;
    let mut edges = Vec::new();
    for _ in 0..n {
        let a = LabelId(r.u32()?);
        let b = LabelId(r.u32()?);
        let w = r.f64()?;
        edges.push((a, b, w));
    }
    Ok(edges)
}

fn decode_btree(r: &mut SliceReader) -> Result<Vec<(Vec<u8>, u64)>, String> {
    let n = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..n {
        let k = r.take(KEY_LEN)?.to_vec();
        let v = r.u64()?;
        entries.push((k, v));
    }
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err("B-tree entries out of order".to_string());
    }
    Ok(entries)
}

fn decode_heap(r: &mut SliceReader) -> Result<Option<Vec<Vec<u8>>>, String> {
    let n = r.u64()?;
    if n == u64::MAX {
        return Ok(None);
    }
    let mut records = Vec::new();
    for _ in 0..n {
        records.push(r.bytes()?.to_vec());
    }
    Ok(Some(records))
}

fn decode_tombstones(r: &mut SliceReader) -> Result<Vec<u32>, String> {
    let n = r.u32()?;
    let mut removed = Vec::new();
    for _ in 0..n {
        removed.push(r.u32()?);
    }
    Ok(removed)
}

/// Decoded delta content: key-ordered run entries plus (for clustered
/// indexes) the copy records the values index into.
type DeltaParts = (Vec<(Vec<u8>, u64)>, Option<Vec<Vec<u8>>>);

fn decode_delta(r: &mut SliceReader) -> Result<DeltaParts, String> {
    let n = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..n {
        let k = r.take(KEY_LEN)?.to_vec();
        let v = r.u64()?;
        entries.push((k, v));
    }
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err("delta entries out of order".to_string());
    }
    let m = r.u64()?;
    let copies = if m == u64::MAX {
        None
    } else {
        let mut records = Vec::new();
        for _ in 0..m {
            records.push(r.bytes()?.to_vec());
        }
        Some(records)
    };
    if let Some(c) = &copies {
        if entries.iter().any(|&(_, v)| v >= c.len() as u64) {
            return Err("delta value points past the copy records".to_string());
        }
    }
    Ok((entries, copies))
}

/// Runs a decoder over a whole payload, requiring full consumption.
fn decode_whole<'a, T>(
    payload: &'a [u8],
    f: impl FnOnce(&mut SliceReader<'a>) -> Result<T, String>,
) -> Result<T, String> {
    let mut r = SliceReader::new(payload);
    let v = f(&mut r)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes in section", r.remaining()));
    }
    Ok(v)
}

fn decode_payload<'a, T>(
    s: Section,
    payload: &'a [u8],
    f: impl FnOnce(&mut SliceReader<'a>) -> Result<T, String>,
) -> Result<T, FixError> {
    decode_whole(payload, f).map_err(|d| corrupt(s.name(), d))
}

/// Structure-checks one payload without building anything (the verify
/// path's per-section decode pass).
fn decode_check(s: Section, payload: &[u8], v3: bool) -> Result<(), String> {
    match s {
        Section::Options => decode_whole(payload, |r| decode_options(r, v3)).map(drop),
        Section::Labels => decode_whole(payload, decode_labels).map(drop),
        Section::Documents => decode_whole(payload, decode_documents).map(drop),
        Section::Edges => decode_whole(payload, decode_edges).map(drop),
        Section::BTree => decode_whole(payload, decode_btree).map(drop),
        Section::Heap => decode_whole(payload, decode_heap).map(drop),
        Section::Tombstones => decode_whole(payload, decode_tombstones).map(drop),
        Section::Delta => decode_whole(payload, decode_delta).map(drop),
    }
}

/// The fully decoded (but not yet materialized) content of a database
/// file.
struct Decoded {
    opts: FixOptions,
    labels: Vec<String>,
    docs: Vec<String>,
    edges: Vec<(LabelId, LabelId, f64)>,
    entries: Vec<(Vec<u8>, u64)>,
    heap: Option<Vec<Vec<u8>>>,
    tombstones: Vec<u32>,
    /// The optional delta frame's content; `None` for files written
    /// without one (v2, or v3 with an empty delta at save time).
    delta: Option<DeltaParts>,
}

/// Materializes decoded content into a live collection + index.
fn assemble(d: Decoded) -> Result<(Collection, FixIndex), FixError> {
    // Label table: intern in saved order so ids are reproduced exactly.
    let mut coll = Collection::new();
    for (i, name) in d.labels.iter().enumerate() {
        let id = coll.labels.intern(name);
        if id.0 as usize != i {
            return Err(corrupt("labels", "label table out of order"));
        }
    }
    // Documents were depth-checked when first added; never reject
    // previously persisted data on reload.
    for xml in &d.docs {
        coll.add_xml_limited(xml, usize::MAX)
            .map_err(|e| corrupt("documents", format!("document reparse: {e}")))?;
    }

    let mut encoder = EdgeEncoder::new();
    for (a, b, w) in d.edges {
        encoder.restore(a, b, w);
    }

    // Replay heap appends *before* loading the B-tree: construction
    // allocates heap pages first and B-tree pages second, so replaying in
    // the same order reproduces the record ids the stored B-tree values
    // point at.
    let pool = PageSpace::in_memory(d.opts.pool_pages);
    let clustered_heap = d.heap.map(|records| {
        let mut heap = HeapFile::new(pool.clone());
        for record in &records {
            heap.append(record);
        }
        heap
    });
    let btree = BTree::bulk_load(pool.clone(), KEY_LEN, d.entries);

    let delta = match d.delta {
        None => DeltaIndex::new(d.opts.clustered, d.opts.tier_fanout),
        Some((entries, copies)) => {
            if copies.is_some() != d.opts.clustered {
                return Err(corrupt(
                    "delta",
                    "delta clustering disagrees with the options section",
                ));
            }
            DeltaIndex::from_sorted(entries, copies, d.opts.tier_fanout)
        }
    };

    let stats = BuildStats {
        entries: btree.len() + delta.len(),
        btree_bytes: btree.stats().size_bytes,
        clustered_bytes: clustered_heap
            .as_ref()
            .map(HeapFile::size_bytes)
            .unwrap_or(0),
        ..Default::default()
    };
    let mut removed = std::collections::HashSet::new();
    for t in d.tombstones {
        removed.insert(DocId(t));
    }

    let hasher = d.opts.value_beta.map(ValueHasher::new);
    Ok((
        coll,
        FixIndex {
            opts: d.opts,
            btree,
            encoder,
            hasher,
            clustered: clustered_heap,
            pool,
            stats,
            incremental: None,
            delta,
            removed,
            compactions: 0,
            compact_ns: 0,
        },
    ))
}

// ----------------------------------------------------------- frame walking

/// One parsed v3 frame.
struct Frame<'a> {
    offset: usize,
    payload: &'a [u8],
    crc_ok: bool,
    stored: u32,
    computed: u32,
}

fn checksum_detail(fr: &Frame) -> String {
    format!(
        "checksum mismatch at offset {:#x} (stored {:#010x}, computed {:#010x})",
        fr.offset, fr.stored, fr.computed
    )
}

/// Cursor over the frame sequence of a v3 file. Structural errors
/// (truncated header, wrong section id, length overrunning the file) are
/// reported with byte offsets; CRC state is reported per frame so callers
/// choose whether to stop (load) or record and continue (verify).
struct FrameWalk<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> FrameWalk<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self::at(data, 8)
    }

    /// A walk starting at an arbitrary offset (the v4 metadata tail has
    /// no leading magic; its frames start at offset 0 of the region).
    fn at(data: &'a [u8], pos: usize) -> Self {
        Self { data, pos }
    }

    fn next(&mut self, expect: Section) -> Result<Frame<'a>, String> {
        self.next_id(expect.id())
    }

    fn next_id(&mut self, expect: u8) -> Result<Frame<'a>, String> {
        let offset = self.pos;
        let avail = self.data.len() - self.pos;
        if avail < FRAME_HEADER_LEN {
            return Err(format!(
                "truncated frame header at offset {offset:#x} ({avail} bytes remain, need {FRAME_HEADER_LEN})"
            ));
        }
        let id = self.data[self.pos];
        if id != expect {
            return Err(format!(
                "expected section id {expect} at offset {offset:#x}, found {id}"
            ));
        }
        let len = u64::from_le_bytes(self.data[self.pos + 1..self.pos + 9].try_into().unwrap());
        let body = avail - FRAME_HEADER_LEN;
        if len > body.saturating_sub(4) as u64 {
            return Err(format!(
                "section length {len} at offset {offset:#x} overruns the file"
            ));
        }
        let start = self.pos + FRAME_HEADER_LEN;
        let n = len as usize;
        let payload = &self.data[start..start + n];
        let stored = u32::from_le_bytes(self.data[start + n..start + n + 4].try_into().unwrap());
        let computed = crc32(payload);
        self.pos = start + n + 4;
        Ok(Frame {
            offset,
            payload,
            crc_ok: stored == computed,
            stored,
            computed,
        })
    }
}

fn check_footer(data: &[u8], pos: usize) -> Result<(), String> {
    let rest = &data[pos..];
    if rest.len() != FOOTER_LEN {
        return Err(format!(
            "expected a {FOOTER_LEN}-byte footer at offset {pos:#x}, found {} bytes",
            rest.len()
        ));
    }
    if rest[0] != FOOTER_ID {
        return Err(format!(
            "bad footer marker {:#04x} at offset {pos:#x}",
            rest[0]
        ));
    }
    let off = u64::from_le_bytes(rest[1..9].try_into().unwrap());
    if off != pos as u64 {
        return Err(format!(
            "footer offset field {off:#x} does not match footer position {pos:#x}"
        ));
    }
    let stored = u32::from_le_bytes(rest[9..13].try_into().unwrap());
    let computed = crc32(&data[..pos]);
    if stored != computed {
        return Err(format!(
            "file checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        ));
    }
    Ok(())
}

// ------------------------------------------------------------------ loading

/// [`load_any`] without the pool/bytes-read plumbing (test convenience).
#[cfg(test)]
pub(crate) fn load_impl(path: &Path) -> Result<(Collection, FixIndex), FixError> {
    load_any(path, None).map(|(coll, idx, _)| (coll, idx))
}

/// Loads a database of any format version, optionally attaching a paged
/// file to an existing shared buffer pool. Returns the collection, the
/// index, and the bytes physically read at open — for a v4 file that is
/// the superblock plus the metadata tail only (pages are demand-read
/// later), which is what makes paged cold-start independent of file size.
pub(crate) fn load_any(
    path: &Path,
    pool: Option<&Arc<BufferPool>>,
) -> Result<(Collection, FixIndex, u64), FixError> {
    let mut magic = [0u8; 8];
    let peeked = {
        let mut f = std::fs::File::open(path)?;
        f.read_exact(&mut magic).is_ok()
    };
    if peeked && &magic == MAGIC_V4 {
        return load_paged(path, pool);
    }
    let mut data = std::fs::read(path)?;
    // Injected-read-fault boundary (fault-domain testing): a torn fault
    // here damages framed, CRC-checked territory and must surface as
    // `Corrupt`, never as a wrong answer.
    fix_storage::fault::read_boundary(&mut data)?;
    let bytes = data.len() as u64;
    let (coll, idx) = load_bytes(&data)?;
    Ok((coll, idx, bytes))
}

pub(crate) fn load_bytes(data: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    if data.len() < 8 {
        return Err(corrupt(
            "header",
            format!(
                "file is {} bytes, shorter than the 8-byte magic",
                data.len()
            ),
        ));
    }
    match &data[..8] {
        m if m == MAGIC_V3 => load_v3(data),
        m if m == MAGIC_V2 => load_v2(&data[8..]),
        m if m == MAGIC_V4 => Err(corrupt(
            "header",
            "paged (v4) databases attach to their file and must be opened from a path",
        )),
        _ => Err(corrupt("header", "bad magic")),
    }
}

fn load_v3(data: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    let mut walk = FrameWalk::new(data);
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(Section::ALL.len());
    for s in Section::ALL {
        let fr = walk.next(s).map_err(|d| corrupt(s.name(), d))?;
        if !fr.crc_ok {
            return Err(corrupt(s.name(), checksum_detail(&fr)));
        }
        payloads.push(fr.payload);
    }
    // The delta frame is optional: peek for its id before the footer.
    let delta = if data.get(walk.pos) == Some(&Section::Delta.id()) {
        let s = Section::Delta;
        let fr = walk.next(s).map_err(|d| corrupt(s.name(), d))?;
        if !fr.crc_ok {
            return Err(corrupt(s.name(), checksum_detail(&fr)));
        }
        Some(decode_payload(s, fr.payload, decode_delta)?)
    } else {
        None
    };
    check_footer(data, walk.pos).map_err(|d| corrupt("footer", d))?;

    let d = Decoded {
        opts: decode_payload(Section::Options, payloads[0], |r| decode_options(r, true))?,
        labels: decode_payload(Section::Labels, payloads[1], decode_labels)?,
        docs: decode_payload(Section::Documents, payloads[2], decode_documents)?,
        edges: decode_payload(Section::Edges, payloads[3], decode_edges)?,
        entries: decode_payload(Section::BTree, payloads[4], decode_btree)?,
        heap: decode_payload(Section::Heap, payloads[5], decode_heap)?,
        tombstones: decode_payload(Section::Tombstones, payloads[6], decode_tombstones)?,
        delta,
    };
    assemble(d)
}

/// Loads the legacy unframed v2 layout (`body` excludes the magic).
/// Sections decode sequentially with the same bounded readers; trailing
/// bytes are tolerated (v2 had no footer to delimit the content).
fn load_v2(body: &[u8]) -> Result<(Collection, FixIndex), FixError> {
    let mut r = SliceReader::new(body);
    let d = Decoded {
        opts: decode_options(&mut r, false).map_err(|d| corrupt("options", d))?,
        labels: decode_labels(&mut r).map_err(|d| corrupt("labels", d))?,
        docs: decode_documents(&mut r).map_err(|d| corrupt("documents", d))?,
        edges: decode_edges(&mut r).map_err(|d| corrupt("edges", d))?,
        entries: decode_btree(&mut r).map_err(|d| corrupt("btree", d))?,
        heap: decode_heap(&mut r).map_err(|d| corrupt("heap", d))?,
        tombstones: decode_tombstones(&mut r).map_err(|d| corrupt("tombstones", d))?,
        delta: None,
    };
    assemble(d)
}

// ------------------------------------------------------------------- saving

/// Byte counter + running CRC over everything written; the footer's
/// offset and file checksum fall out of the state at footer time.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
    count: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
            count: 0,
        }
    }

    fn put(&mut self, b: &[u8]) -> io::Result<()> {
        self.inner.write_all(b)?;
        self.crc.update(b);
        self.count += b.len() as u64;
        Ok(())
    }

    fn into_inner(self) -> W {
        self.inner
    }
}

fn write_v3<W: Write>(w: &mut CrcWriter<W>, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    w.put(MAGIC_V3)?;
    let mut sections: Vec<Section> = Section::ALL.to_vec();
    // The delta frame is written only when there is delta content, so
    // delta-free files stay byte-identical to the original v3 layout.
    if !idx.delta.is_empty() {
        sections.push(Section::Delta);
    }
    for s in sections {
        let payload = encode_section(s, coll, idx, true);
        w.put(&[s.id()])?;
        w.put(&(payload.len() as u64).to_le_bytes())?;
        w.put(&payload)?;
        w.put(&crc32(&payload).to_le_bytes())?;
    }
    // Snapshot offset + file CRC *before* the footer's own bytes.
    let offset = w.count;
    let crc = w.crc.finalize();
    w.put(&[FOOTER_ID])?;
    w.put(&offset.to_le_bytes())?;
    w.put(&crc.to_le_bytes())
}

fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "fixdb".to_string());
    path.with_file_name(format!("{name}.tmp{}", std::process::id()))
}

/// Fsyncs the directory holding `path` so the rename itself is durable.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

fn write_tmp(
    tmp: &Path,
    coll: &Collection,
    idx: &FixIndex,
    plan: Option<FaultPlan>,
) -> io::Result<()> {
    let file = std::fs::File::create(tmp)?;
    let mut w = CrcWriter::new(FaultFile::new(io::BufWriter::new(&file), plan));
    write_v3(&mut w, coll, idx)?;
    let mut fault = w.into_inner();
    fault.flush()?;
    drop(fault);
    file.sync_all()
}

pub(crate) fn save_impl(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    if idx.options().storage == StorageMode::Paged {
        return save_paged(path, coll, idx);
    }
    save_with_faults(path, coll, idx, None)
}

/// The atomic save, with an optional injected write fault (the
/// crash-matrix test hook; `None` is the production path). Protocol:
/// write a sibling temp file, flush, `fsync`, `rename` over `path`,
/// `fsync` the directory. On any failure the temp file is removed and
/// whatever previously lived at `path` is untouched.
pub fn save_with_faults(
    path: &Path,
    coll: &Collection,
    idx: &FixIndex,
    plan: Option<FaultPlan>,
) -> io::Result<()> {
    let tmp = tmp_path(path);
    if let Err(e) = write_tmp(&tmp, coll, idx, plan) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path)
}

/// Writes the legacy v2 layout: no frames, no checksums, no atomicity.
/// Kept so the v2 compatibility path stays testable against genuinely
/// old-format files; never used by the production save.
pub fn save_v2_unchecked(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    for s in Section::ALL {
        out.extend_from_slice(&encode_section(s, coll, idx, false));
    }
    std::fs::write(path, out)
}

// --------------------------------------------------------- paged format (v4)
//
// A v4 file is a page file with a small framed metadata tail:
//
// ```text
// superblock (40 B in the first page):
//   "FIXDB\0\x04\0"  page_size:u32le  page_count:u64le
//   meta_off:u64le   meta_len:u64le   crc32(first 36 bytes):u32le
// data pages: page_count × PAGE_SIZE starting at byte PAGE_SIZE
//   (document heap, clustered heap, B+-tree nodes — physical layout)
// metadata tail at meta_off = PAGE_SIZE × (1 + page_count):
//   frames (v3 framing): options, labels, docdir, edges, btree-meta,
//   heap-dirs, tombstones, page-crcs, [delta]
//   footer: 0xFF  meta_body_len:u64le  crc32(metadata frames):u32le
// ```
//
// Opening reads only the superblock and the metadata tail; every page is
// demand-read through the buffer pool and checked against its entry in the
// page-crcs table, so a torn page surfaces at the page that was damaged —
// verify and salvage are page-granular for the same reason. The footer CRC
// covers the metadata region only (not the pages), keeping open O(metadata).

/// v4 superblock wire size.
const SUPERBLOCK_LEN: usize = 40;
/// v4-only metadata frame ids (options/labels/edges/tombstones/delta reuse
/// the [`Section`] ids and payload encodings; these four replace the v3
/// sections whose v3 payloads inline page data).
const V4_DOC_DIR: u8 = 2;
const V4_BTREE_META: u8 = 4;
const V4_HEAP_DIRS: u8 = 5;
const V4_PAGE_CRCS: u8 = 8;

/// Decoded v4 superblock (`page_size` is validated during decode).
struct Superblock {
    page_count: u64,
    meta_off: u64,
    meta_len: u64,
}

fn encode_superblock(sb: &Superblock) -> [u8; SUPERBLOCK_LEN] {
    let mut out = [0u8; SUPERBLOCK_LEN];
    out[..8].copy_from_slice(MAGIC_V4);
    out[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    out[12..20].copy_from_slice(&sb.page_count.to_le_bytes());
    out[20..28].copy_from_slice(&sb.meta_off.to_le_bytes());
    out[28..36].copy_from_slice(&sb.meta_len.to_le_bytes());
    let crc = crc32(&out[..36]);
    out[36..40].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and cross-checks a superblock against the file length. The
/// caller has already matched the magic.
fn decode_superblock(buf: &[u8], file_len: u64) -> Result<Superblock, String> {
    if buf.len() < SUPERBLOCK_LEN {
        return Err(format!(
            "file is {} bytes, shorter than the {SUPERBLOCK_LEN}-byte superblock",
            buf.len()
        ));
    }
    let stored = u32::from_le_bytes(buf[36..40].try_into().unwrap());
    let computed = crc32(&buf[..36]);
    if stored != computed {
        return Err(format!(
            "superblock checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        ));
    }
    let page_size = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if page_size as usize != PAGE_SIZE {
        return Err(format!(
            "page size {page_size} does not match this build's {PAGE_SIZE}"
        ));
    }
    let page_count = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let meta_off = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let meta_len = u64::from_le_bytes(buf[28..36].try_into().unwrap());
    let want_off = (PAGE_SIZE as u64).checked_mul(1 + page_count);
    if want_off != Some(meta_off) {
        return Err(format!(
            "metadata offset {meta_off:#x} does not follow {page_count} pages"
        ));
    }
    if meta_off.checked_add(meta_len) != Some(file_len) {
        return Err(format!(
            "metadata region ({meta_off:#x}+{meta_len}) does not end at the file end ({file_len} bytes)"
        ));
    }
    if (meta_len as usize) < FOOTER_LEN {
        return Err(format!(
            "metadata region shorter than the {FOOTER_LEN}-byte footer"
        ));
    }
    Ok(Superblock {
        page_count,
        meta_off,
        meta_len,
    })
}

/// Footer over the v4 metadata region: same wire shape as the v3 footer,
/// but the offset field and the CRC cover the metadata bytes only —
/// [`check_footer`] already checksums `data[..pos]`, so handing it the
/// region instead of the file is exactly the v4 semantics.
fn check_meta_footer(meta: &[u8]) -> Result<(), String> {
    check_footer(meta, meta.len() - FOOTER_LEN)
}

/// Reads one CRC-checked v4 metadata frame, or a [`FixError::Corrupt`]
/// naming the section.
fn v4_frame<'a>(
    walk: &mut FrameWalk<'a>,
    id: u8,
    name: &'static str,
) -> Result<&'a [u8], FixError> {
    let fr = walk.next_id(id).map_err(|d| corrupt(name, d))?;
    if !fr.crc_ok {
        return Err(corrupt(name, checksum_detail(&fr)));
    }
    Ok(fr.payload)
}

fn encode_doc_dir(rids: &[RecordId]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, rids.len() as u32);
    for r in rids {
        put_u64(&mut out, r.to_u64());
    }
    out
}

fn decode_doc_dir(r: &mut SliceReader) -> Result<Vec<RecordId>, String> {
    let n = r.u32()?;
    let mut rids = Vec::new();
    for _ in 0..n {
        rids.push(RecordId::from_u64(r.u64()?));
    }
    Ok(rids)
}

fn encode_btree_meta(t: &BTree) -> Vec<u8> {
    let s = t.stats();
    let mut out = Vec::new();
    put_u64(&mut out, t.root_page().0);
    put_u64(&mut out, s.height as u64);
    put_u64(&mut out, s.entries);
    put_u64(&mut out, s.pages);
    out
}

/// `(root, height, entries, pages)` of the persisted tree.
type BTreeMeta = (u64, usize, u64, u64);

fn decode_btree_meta(r: &mut SliceReader) -> Result<BTreeMeta, String> {
    let root = r.u64()?;
    let height = r.u64()?;
    if height > 64 {
        return Err(format!("implausible B-tree height {height}"));
    }
    let entries = r.u64()?;
    let pages = r.u64()?;
    Ok((root, height as usize, entries, pages))
}

fn encode_heap_dir(out: &mut Vec<u8>, dir: &HeapDirectory) {
    put_u64(out, dir.records);
    put_u64(out, dir.overflow_pages);
    put_u64(out, dir.data_pages.len() as u64);
    for p in &dir.data_pages {
        put_u64(out, p.0);
    }
}

fn decode_heap_dir(r: &mut SliceReader) -> Result<HeapDirectory, String> {
    let records = r.u64()?;
    let overflow_pages = r.u64()?;
    let n = r.u64()?;
    let mut data_pages = Vec::new();
    for _ in 0..n {
        data_pages.push(PageId(r.u64()?));
    }
    Ok(HeapDirectory {
        data_pages,
        records,
        overflow_pages,
    })
}

fn encode_heap_dirs(docs: &HeapDirectory, clustered: Option<&HeapDirectory>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_heap_dir(&mut out, docs);
    match clustered {
        Some(dir) => {
            put_u32(&mut out, 1);
            encode_heap_dir(&mut out, dir);
        }
        None => put_u32(&mut out, 0),
    }
    out
}

fn decode_heap_dirs(r: &mut SliceReader) -> Result<(HeapDirectory, Option<HeapDirectory>), String> {
    let docs = decode_heap_dir(r)?;
    let clustered = match r.u32()? {
        0 => None,
        1 => Some(decode_heap_dir(r)?),
        f => return Err(format!("bad clustered-heap flag {f}")),
    };
    Ok((docs, clustered))
}

fn encode_page_crcs(crcs: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, crcs.len() as u64);
    for c in crcs {
        put_u32(&mut out, *c);
    }
    out
}

fn decode_page_crcs(r: &mut SliceReader) -> Result<Vec<u32>, String> {
    let n = r.u64()?;
    if n > r.remaining() as u64 / 4 {
        return Err(format!("page-CRC count {n} exceeds the bytes remaining"));
    }
    let mut crcs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        crcs.push(r.u32()?);
    }
    Ok(crcs)
}

fn storage_io(e: fix_storage::StorageError) -> io::Error {
    io::Error::other(e)
}

fn put_frame<W: Write>(w: &mut CrcWriter<W>, id: u8, payload: &[u8]) -> io::Result<()> {
    w.put(&[id])?;
    w.put(&(payload.len() as u64).to_le_bytes())?;
    w.put(payload)?;
    w.put(&crc32(payload).to_le_bytes())
}

/// Saves the paged (v4) format with the same temp-file + rename + dir-fsync
/// protocol as v3, so a crash at any boundary leaves the old file intact.
pub(crate) fn save_paged(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    let tmp = tmp_path(path);
    if let Err(e) = write_paged_tmp(&tmp, coll, idx) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path)
}

/// Builds the page file by deterministic replay into a fresh backend:
/// document heap appends in id order, clustered copies in insertion order,
/// then a B+-tree bulk load. Record ids in the fresh file differ from the
/// live in-memory ones, so clustered B-tree values are remapped through
/// the replay's old→new table — the written file is self-consistent by
/// construction rather than by trusting the source layout.
fn write_paged_tmp(tmp: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    let opts = idx.options();
    let backend = FileBackend::create_at(tmp, PAGE_SIZE as u64)?;
    let pool = BufferPool::shared(opts.pool_pages.max(8)).attach(Box::new(backend));

    // (1) Documents, in id order.
    let mut docs_heap = HeapFile::new(pool.clone());
    let mut doc_rids = Vec::with_capacity(coll.len());
    for (_, d) in coll.iter() {
        let xml = fix_xml::to_xml_string(d, &coll.labels);
        doc_rids.push(docs_heap.append(xml.as_bytes()));
    }

    // (2) Clustered copies, replayed in insertion order.
    let mut remap: HashMap<u64, u64> = HashMap::new();
    let clustered_dir = match &idx.clustered {
        Some(heap) => {
            let mut out = HeapFile::new(pool.clone());
            for (old, record) in heap.scan() {
                let new = out.append(&record);
                remap.insert(old.to_u64(), new.to_u64());
            }
            Some(out.directory())
        }
        None => None,
    };

    // (3) B-tree over remapped values (unclustered values are packed
    // entry pointers, not record ids — those pass through untouched).
    let entries: Vec<(Vec<u8>, u64)> = idx
        .btree
        .iter()
        .map(|(k, v)| {
            let v = if clustered_dir.is_some() {
                *remap
                    .get(&v)
                    .expect("clustered B-tree value has no heap record")
            } else {
                v
            };
            (k, v)
        })
        .collect();
    let btree = BTree::bulk_load(pool.clone(), KEY_LEN, entries);
    pool.flush().map_err(storage_io)?;
    let page_count = pool.num_pages();

    // Per-page CRCs and the metadata tail go through a second handle
    // (fsync is per-inode, so one sync_all at the end covers the pool's
    // writes too).
    let mut file = OpenOptions::new().read(true).write(true).open(tmp)?;
    let mut crcs = Vec::with_capacity(page_count as usize);
    file.seek(SeekFrom::Start(PAGE_SIZE as u64))?;
    let mut buf = vec![0u8; PAGE_SIZE];
    for _ in 0..page_count {
        file.read_exact(&mut buf)?;
        crcs.push(crc32(&buf));
    }
    let meta_off = PAGE_SIZE as u64 * (1 + page_count);
    let meta_len = {
        file.seek(SeekFrom::Start(meta_off))?;
        let mut w = CrcWriter::new(io::BufWriter::new(&mut file));
        put_frame(
            &mut w,
            Section::Options.id(),
            &encode_section(Section::Options, coll, idx, true),
        )?;
        put_frame(
            &mut w,
            Section::Labels.id(),
            &encode_section(Section::Labels, coll, idx, true),
        )?;
        put_frame(&mut w, V4_DOC_DIR, &encode_doc_dir(&doc_rids))?;
        put_frame(
            &mut w,
            Section::Edges.id(),
            &encode_section(Section::Edges, coll, idx, true),
        )?;
        put_frame(&mut w, V4_BTREE_META, &encode_btree_meta(&btree))?;
        put_frame(
            &mut w,
            V4_HEAP_DIRS,
            &encode_heap_dirs(&docs_heap.directory(), clustered_dir.as_ref()),
        )?;
        put_frame(
            &mut w,
            Section::Tombstones.id(),
            &encode_section(Section::Tombstones, coll, idx, true),
        )?;
        put_frame(&mut w, V4_PAGE_CRCS, &encode_page_crcs(&crcs))?;
        if !idx.delta.is_empty() {
            put_frame(
                &mut w,
                Section::Delta.id(),
                &encode_section(Section::Delta, coll, idx, true),
            )?;
        }
        let body = w.count;
        let crc = w.crc.finalize();
        w.put(&[FOOTER_ID])?;
        w.put(&body.to_le_bytes())?;
        w.put(&crc.to_le_bytes())?;
        let meta_len = w.count;
        w.into_inner().flush()?;
        meta_len
    };
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&encode_superblock(&Superblock {
        page_count,
        meta_off,
        meta_len,
    }))?;
    file.sync_all()
}

/// Opens a paged database: superblock + CRC-verified metadata tail only.
/// Pages attach to `shared` (several databases then compete for the same
/// bounded frame budget) or to a fresh pool sized by the saved
/// `pool_pages`. Documents become lazy heap-backed slots; the B+-tree and
/// clustered heap attach over the file's pages without reading them.
fn load_paged(
    path: &Path,
    shared: Option<&Arc<BufferPool>>,
) -> Result<(Collection, FixIndex, u64), FixError> {
    let mut file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut sb_buf = [0u8; SUPERBLOCK_LEN];
    file.read_exact(&mut sb_buf)
        .map_err(|_| corrupt("superblock", "file shorter than the superblock"))?;
    fix_storage::fault::read_boundary(&mut sb_buf)?;
    let sb = decode_superblock(&sb_buf, file_len).map_err(|d| corrupt("superblock", d))?;
    let mut meta = vec![0u8; sb.meta_len as usize];
    file.seek(SeekFrom::Start(sb.meta_off))?;
    file.read_exact(&mut meta)?;
    // Injected-read-fault boundary: a torn metadata tail must fail the
    // footer/frame CRCs below, never decode into a wrong index.
    fix_storage::fault::read_boundary(&mut meta)?;
    check_meta_footer(&meta).map_err(|d| corrupt("footer", d))?;

    let mut walk = FrameWalk::at(&meta, 0);
    let mut opts = decode_whole(
        v4_frame(&mut walk, Section::Options.id(), "options")?,
        |r| decode_options(r, true),
    )
    .map_err(|d| corrupt("options", d))?;
    let labels = decode_whole(
        v4_frame(&mut walk, Section::Labels.id(), "labels")?,
        decode_labels,
    )
    .map_err(|d| corrupt("labels", d))?;
    let doc_rids = decode_whole(v4_frame(&mut walk, V4_DOC_DIR, "docdir")?, decode_doc_dir)
        .map_err(|d| corrupt("docdir", d))?;
    let edges = decode_whole(
        v4_frame(&mut walk, Section::Edges.id(), "edges")?,
        decode_edges,
    )
    .map_err(|d| corrupt("edges", d))?;
    let (root, height, entries, pages) = decode_whole(
        v4_frame(&mut walk, V4_BTREE_META, "btree-meta")?,
        decode_btree_meta,
    )
    .map_err(|d| corrupt("btree-meta", d))?;
    let (docs_dir, clustered_dir) = decode_whole(
        v4_frame(&mut walk, V4_HEAP_DIRS, "heap-dirs")?,
        decode_heap_dirs,
    )
    .map_err(|d| corrupt("heap-dirs", d))?;
    let tombstones = decode_whole(
        v4_frame(&mut walk, Section::Tombstones.id(), "tombstones")?,
        decode_tombstones,
    )
    .map_err(|d| corrupt("tombstones", d))?;
    let crcs = decode_whole(
        v4_frame(&mut walk, V4_PAGE_CRCS, "page-crcs")?,
        decode_page_crcs,
    )
    .map_err(|d| corrupt("page-crcs", d))?;
    let delta = if meta.get(walk.pos) == Some(&Section::Delta.id()) {
        let payload = v4_frame(&mut walk, Section::Delta.id(), "delta")?;
        Some(decode_whole(payload, decode_delta).map_err(|d| corrupt("delta", d))?)
    } else {
        None
    };
    if walk.pos != meta.len() - FOOTER_LEN {
        return Err(corrupt(
            "footer",
            format!(
                "{} unexpected bytes between the last frame and the footer",
                meta.len() - FOOTER_LEN - walk.pos
            ),
        ));
    }

    // Cross-checks: everything that names a page must stay inside the
    // page region the superblock declared.
    if crcs.len() as u64 != sb.page_count {
        return Err(corrupt(
            "page-crcs",
            format!("{} checksums for {} pages", crcs.len(), sb.page_count),
        ));
    }
    let page_ok = |p: u64| p < sb.page_count;
    if !page_ok(root) {
        return Err(corrupt("btree-meta", "root page out of range"));
    }
    for dir in std::iter::once(&docs_dir).chain(clustered_dir.iter()) {
        if dir.data_pages.iter().any(|p| !page_ok(p.0)) {
            return Err(corrupt("heap-dirs", "heap data page out of range"));
        }
    }
    if doc_rids.iter().any(|r| !page_ok(r.page.0)) {
        return Err(corrupt("docdir", "document record page out of range"));
    }

    opts.storage = StorageMode::Paged;
    let backend = FileBackend::open_at(path, PAGE_SIZE as u64, sb.page_count)?;
    let pool_arc = match shared {
        Some(p) => Arc::clone(p),
        None => BufferPool::shared(opts.pool_pages),
    };
    let pool = pool_arc.attach_verified(Box::new(backend), crcs);
    let docs_heap = HeapFile::attach(pool.clone(), docs_dir);
    let clustered = clustered_dir.map(|d| HeapFile::attach(pool.clone(), d));
    let btree = BTree::attach(pool.clone(), KEY_LEN, PageId(root), height, entries, pages);

    let mut coll = Collection::new();
    for (i, name) in labels.iter().enumerate() {
        let id = coll.labels.intern(name);
        if id.0 as usize != i {
            return Err(corrupt("labels", "label table out of order"));
        }
    }
    coll.attach_lazy_docs(docs_heap, doc_rids);

    let mut encoder = EdgeEncoder::new();
    for (a, b, w) in edges {
        encoder.restore(a, b, w);
    }
    let delta = match delta {
        None => DeltaIndex::new(opts.clustered, opts.tier_fanout),
        Some((entries, copies)) => {
            if copies.is_some() != opts.clustered {
                return Err(corrupt(
                    "delta",
                    "delta clustering disagrees with the options section",
                ));
            }
            DeltaIndex::from_sorted(entries, copies, opts.tier_fanout)
        }
    };
    let stats = BuildStats {
        entries: btree.len() + delta.len(),
        btree_bytes: btree.stats().size_bytes,
        clustered_bytes: clustered.as_ref().map(HeapFile::size_bytes).unwrap_or(0),
        ..Default::default()
    };
    let mut removed = std::collections::HashSet::new();
    for t in tombstones {
        removed.insert(DocId(t));
    }
    let hasher = opts.value_beta.map(ValueHasher::new);
    let bytes_read = SUPERBLOCK_LEN as u64 + sb.meta_len;
    Ok((
        coll,
        FixIndex {
            opts,
            btree,
            encoder,
            hasher,
            clustered,
            pool,
            stats,
            incremental: None,
            delta,
            removed,
            compactions: 0,
            compact_ns: 0,
        },
        bytes_read,
    ))
}

// ------------------------------------------------------------------- verify

/// Health of one verified section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// Frame intact: checksum matches and the payload decodes.
    Ok,
    /// The section failed validation; the string says how and where.
    Corrupt(String),
}

/// One section's verification outcome (a row of `fixdb verify` output).
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Section name (`"options"`, …, `"footer"`, or `"header"`/`"file"`
    /// pseudo-sections).
    pub section: String,
    /// Byte offset of the section's frame in the file.
    pub offset: u64,
    /// Payload length in bytes (0 when the frame itself is unreadable).
    pub len: u64,
    /// Verification outcome.
    pub status: SectionStatus,
}

/// The full fsck report for one database file (see [`verify_file`]).
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Format version: 3, 2 (legacy), or 0 (not a FIX database).
    pub version: u8,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Per-section outcomes, in file order.
    pub sections: Vec<SectionReport>,
}

impl VerifyReport {
    /// True when every section verified clean.
    pub fn is_ok(&self) -> bool {
        self.corrupt_count() == 0
    }

    /// Number of sections that failed verification.
    pub fn corrupt_count(&self) -> usize {
        self.sections
            .iter()
            .filter(|s| matches!(s.status, SectionStatus::Corrupt(_)))
            .count()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.version {
            4 => writeln!(f, "format v4 (paged), {} bytes", self.file_len)?,
            3 => writeln!(f, "format v3, {} bytes", self.file_len)?,
            2 => writeln!(
                f,
                "format v2 (legacy, unchecksummed), {} bytes",
                self.file_len
            )?,
            _ => writeln!(f, "not a FIX database ({} bytes)", self.file_len)?,
        }
        for s in &self.sections {
            match &s.status {
                SectionStatus::Ok => writeln!(
                    f,
                    "  {:<10} @{:#08x} {:>10} B  ok",
                    s.section, s.offset, s.len
                )?,
                SectionStatus::Corrupt(d) => writeln!(
                    f,
                    "  {:<10} @{:#08x} {:>10} B  CORRUPT: {d}",
                    s.section, s.offset, s.len
                )?,
            }
        }
        match self.corrupt_count() {
            0 => write!(f, "ok"),
            n => write!(f, "{n} corrupt section(s)"),
        }
    }
}

/// Verifies a database file without loading it into memory structures:
/// walks every frame, checks every checksum and every decodable length,
/// and reports per-section status with byte offsets. I/O errors reading
/// the file surface as `Err`; corruption is *data*, not an error.
pub fn verify_file(path: &Path) -> io::Result<VerifyReport> {
    let mut data = std::fs::read(path)?;
    // Injected-read-fault boundary: an Error/Short fault surfaces as the
    // `Err` I/O case; a Torn fault lands in checksummed territory and is
    // reported as per-section corruption like any real bit rot.
    fix_storage::fault::read_boundary(&mut data)?;
    Ok(verify_bytes(&data))
}

/// [`verify_file`] over an in-memory image.
pub fn verify_bytes(data: &[u8]) -> VerifyReport {
    let file_len = data.len() as u64;
    if data.len() >= 8 && &data[..8] == MAGIC_V4 {
        return verify_v4(data);
    }
    if data.len() >= 8 && &data[..8] == MAGIC_V3 {
        return verify_v3(data);
    }
    if data.len() >= 8 && &data[..8] == MAGIC_V2 {
        let status = match load_v2(&data[8..]) {
            Ok(_) => ("file".to_string(), SectionStatus::Ok),
            Err(FixError::Corrupt { section, detail }) => (section, SectionStatus::Corrupt(detail)),
            Err(e) => ("file".to_string(), SectionStatus::Corrupt(e.to_string())),
        };
        return VerifyReport {
            version: 2,
            file_len,
            sections: vec![SectionReport {
                section: status.0,
                offset: 8,
                len: file_len.saturating_sub(8),
                status: status.1,
            }],
        };
    }
    let detail = if data.len() < 8 {
        format!(
            "file is {} bytes, shorter than the 8-byte magic",
            data.len()
        )
    } else {
        "bad magic".to_string()
    };
    VerifyReport {
        version: 0,
        file_len,
        sections: vec![SectionReport {
            section: "header".to_string(),
            offset: 0,
            len: file_len.min(8),
            status: SectionStatus::Corrupt(detail),
        }],
    }
}

fn verify_v3(data: &[u8]) -> VerifyReport {
    let mut sections = Vec::new();
    let mut walk = FrameWalk::new(data);
    let mut structural_failure = false;
    for s in Section::ALL {
        let offset = walk.pos as u64;
        match walk.next(s) {
            Err(d) => {
                // The walk can't resync past a broken frame header; later
                // sections are unreachable.
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                structural_failure = true;
                break;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = decode_check(s, fr.payload, true) {
                    SectionStatus::Corrupt(d)
                } else {
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure && data.get(walk.pos) == Some(&Section::Delta.id()) {
        let s = Section::Delta;
        let offset = walk.pos as u64;
        match walk.next(s) {
            Err(d) => {
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                structural_failure = true;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = decode_check(s, fr.payload, true) {
                    SectionStatus::Corrupt(d)
                } else {
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: s.name().to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure {
        let pos = walk.pos;
        let status = match check_footer(data, pos) {
            Ok(()) => SectionStatus::Ok,
            Err(d) => SectionStatus::Corrupt(d),
        };
        sections.push(SectionReport {
            section: "footer".to_string(),
            offset: pos as u64,
            len: (data.len() - pos) as u64,
            status,
        });
    }
    VerifyReport {
        version: 3,
        file_len: data.len() as u64,
        sections,
    }
}

/// The mandatory v4 metadata frames, in file order.
const V4_FRAMES: [(u8, &str); 8] = [
    (Section::Options as u8, "options"),
    (Section::Labels as u8, "labels"),
    (V4_DOC_DIR, "docdir"),
    (Section::Edges as u8, "edges"),
    (V4_BTREE_META, "btree-meta"),
    (V4_HEAP_DIRS, "heap-dirs"),
    (Section::Tombstones as u8, "tombstones"),
    (V4_PAGE_CRCS, "page-crcs"),
];

/// Structure-checks one v4 metadata payload (the verify path).
fn v4_decode_check(id: u8, payload: &[u8]) -> Result<(), String> {
    match id {
        0 => decode_whole(payload, |r| decode_options(r, true)).map(drop),
        1 => decode_whole(payload, decode_labels).map(drop),
        V4_DOC_DIR => decode_whole(payload, decode_doc_dir).map(drop),
        3 => decode_whole(payload, decode_edges).map(drop),
        V4_BTREE_META => decode_whole(payload, decode_btree_meta).map(drop),
        V4_HEAP_DIRS => decode_whole(payload, decode_heap_dirs).map(drop),
        6 => decode_whole(payload, decode_tombstones).map(drop),
        7 => decode_whole(payload, decode_delta).map(drop),
        V4_PAGE_CRCS => decode_whole(payload, decode_page_crcs).map(drop),
        _ => Err(format!("unknown v4 frame id {id}")),
    }
}

/// Page-granular fsck of a v4 file: the superblock, every metadata frame,
/// the metadata footer, and then every data page against its stored
/// CRC-32. A torn page shows up as its own `page N` row while every other
/// section (and every other page) still verifies clean — corruption is
/// isolated, not fatal.
fn verify_v4(data: &[u8]) -> VerifyReport {
    let file_len = data.len() as u64;
    let mut sections = Vec::new();
    let sb = match decode_superblock(data, file_len) {
        Ok(sb) => {
            sections.push(SectionReport {
                section: "superblock".to_string(),
                offset: 0,
                len: SUPERBLOCK_LEN as u64,
                status: SectionStatus::Ok,
            });
            sb
        }
        Err(d) => {
            sections.push(SectionReport {
                section: "superblock".to_string(),
                offset: 0,
                len: file_len.min(SUPERBLOCK_LEN as u64),
                status: SectionStatus::Corrupt(d),
            });
            return VerifyReport {
                version: 4,
                file_len,
                sections,
            };
        }
    };
    let meta = &data[sb.meta_off as usize..];
    let mut walk = FrameWalk::at(meta, 0);
    let mut structural_failure = false;
    let mut crcs: Option<Vec<u32>> = None;
    for (i, (id, name)) in V4_FRAMES.into_iter().enumerate() {
        let offset = sb.meta_off + walk.pos as u64;
        match walk.next_id(id) {
            Err(d) => {
                sections.push(SectionReport {
                    section: name.to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                for (_, rest) in &V4_FRAMES[i + 1..] {
                    sections.push(SectionReport {
                        section: rest.to_string(),
                        offset,
                        len: 0,
                        status: SectionStatus::Corrupt(
                            "unreachable after a structural failure".to_string(),
                        ),
                    });
                }
                structural_failure = true;
                break;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = v4_decode_check(id, fr.payload) {
                    SectionStatus::Corrupt(d)
                } else {
                    if id == V4_PAGE_CRCS {
                        crcs = decode_whole(fr.payload, decode_page_crcs).ok();
                    }
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: name.to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure && meta.get(walk.pos) == Some(&Section::Delta.id()) {
        let offset = sb.meta_off + walk.pos as u64;
        match walk.next_id(Section::Delta.id()) {
            Err(d) => {
                sections.push(SectionReport {
                    section: "delta".to_string(),
                    offset,
                    len: 0,
                    status: SectionStatus::Corrupt(d),
                });
                structural_failure = true;
            }
            Ok(fr) => {
                let status = if !fr.crc_ok {
                    SectionStatus::Corrupt(checksum_detail(&fr))
                } else if let Err(d) = v4_decode_check(Section::Delta.id(), fr.payload) {
                    SectionStatus::Corrupt(d)
                } else {
                    SectionStatus::Ok
                };
                sections.push(SectionReport {
                    section: "delta".to_string(),
                    offset,
                    len: fr.payload.len() as u64,
                    status,
                });
            }
        }
    }
    if !structural_failure {
        let status = match check_footer(meta, walk.pos) {
            Ok(()) => SectionStatus::Ok,
            Err(d) => SectionStatus::Corrupt(d),
        };
        sections.push(SectionReport {
            section: "footer".to_string(),
            offset: sb.meta_off + walk.pos as u64,
            len: (meta.len() - walk.pos) as u64,
            status,
        });
    }
    // Data pages, each against its stored checksum.
    match crcs {
        Some(crcs) if crcs.len() as u64 == sb.page_count => {
            let mut bad = 0usize;
            for i in 0..sb.page_count {
                let start = PAGE_SIZE as u64 * (1 + i);
                let page = &data[start as usize..start as usize + PAGE_SIZE];
                let computed = crc32(page);
                if computed != crcs[i as usize] {
                    sections.push(SectionReport {
                        section: format!("page {i}"),
                        offset: start,
                        len: PAGE_SIZE as u64,
                        status: SectionStatus::Corrupt(format!(
                            "checksum mismatch (stored {:#010x}, computed {computed:#010x})",
                            crcs[i as usize]
                        )),
                    });
                    bad += 1;
                }
            }
            if bad == 0 {
                sections.push(SectionReport {
                    section: "pages".to_string(),
                    offset: PAGE_SIZE as u64,
                    len: sb.page_count * PAGE_SIZE as u64,
                    status: SectionStatus::Ok,
                });
            }
        }
        Some(crcs) => sections.push(SectionReport {
            section: "pages".to_string(),
            offset: PAGE_SIZE as u64,
            len: sb.page_count * PAGE_SIZE as u64,
            status: SectionStatus::Corrupt(format!(
                "{} checksums for {} pages",
                crcs.len(),
                sb.page_count
            )),
        }),
        None => sections.push(SectionReport {
            section: "pages".to_string(),
            offset: PAGE_SIZE as u64,
            len: sb.page_count * PAGE_SIZE as u64,
            status: SectionStatus::Corrupt(
                "unverifiable: the page-crcs frame is damaged".to_string(),
            ),
        }),
    }
    VerifyReport {
        version: 4,
        file_len,
        sections,
    }
}

// ------------------------------------------------------------------ salvage

/// What [`salvage_file`] recovered.
#[derive(Debug, Clone, Default)]
pub struct SalvageSummary {
    /// Documents recovered and re-indexed.
    pub documents: usize,
    /// Recovered document payloads that no longer parse (skipped).
    pub skipped_documents: usize,
    /// Tombstones carried over.
    pub tombstones: usize,
    /// Whether the options section survived (defaults are used otherwise).
    pub options_recovered: bool,
    /// Sections dropped as corrupt or unreachable, with reasons.
    pub dropped: Vec<String>,
    /// Index entries in the rebuilt output database.
    pub entries: u64,
}

impl fmt::Display for SalvageSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "salvaged {} document(s) ({} unparseable skipped), {} tombstone(s); options {}; index rebuilt with {} entries",
            self.documents,
            self.skipped_documents,
            self.tombstones,
            if self.options_recovered {
                "recovered"
            } else {
                "defaulted"
            },
            self.entries
        )?;
        for d in &self.dropped {
            writeln!(f, "  dropped {d}")?;
        }
        Ok(())
    }
}

/// Recovers what it can from a damaged database at `src` into a fresh,
/// fully consistent database at `dst`.
///
/// Source-of-truth sections (options, documents, tombstones) are kept
/// where their frames verify; the derived sections (labels, edge
/// dictionary, B-tree, clustered heap) are *always* rebuilt from the
/// recovered documents — carrying over a derived section whose inputs may
/// have changed would produce a subtly inconsistent index, so salvage
/// trades a rebuild for a guarantee.
pub fn salvage_file(src: &Path, dst: &Path) -> Result<SalvageSummary, FixError> {
    let data = std::fs::read(src)?;
    if data.len() < 8 {
        return Err(corrupt(
            "header",
            format!(
                "file is {} bytes, shorter than the 8-byte magic",
                data.len()
            ),
        ));
    }
    let (opts, docs, tombstones, mut summary) = match &data[..8] {
        m if m == MAGIC_V4 => salvage_scan_v4(src, &data),
        m if m == MAGIC_V3 => salvage_scan_v3(&data),
        m if m == MAGIC_V2 => salvage_scan_v2(&data[8..]),
        _ => return Err(corrupt("header", "bad magic")),
    };

    let mut coll = Collection::new();
    for xml in &docs {
        match coll.add_xml_limited(xml, usize::MAX) {
            Ok(_) => summary.documents += 1,
            Err(_) => summary.skipped_documents += 1,
        }
    }
    let mut idx = FixIndex::build(&mut coll, opts);
    for t in &tombstones {
        if (*t as usize) < coll.len() {
            idx.removed.insert(DocId(*t));
            summary.tombstones += 1;
        }
    }
    summary.entries = idx.btree.len();
    save_impl(dst, &coll, &idx)?;
    Ok(summary)
}

type SalvageScan = (FixOptions, Vec<String>, Vec<u32>, SalvageSummary);

/// Page-granular salvage of a v4 file. Metadata frames are kept where
/// they verify; documents are then fetched record-by-record through a
/// CRC-verified buffer pool, so a torn data page loses exactly the
/// records on it (reported per document) instead of the whole file. The
/// rebuilt output is written fully materialized (v3) — maximally portable
/// and independent of the damaged layout.
fn salvage_scan_v4(src: &Path, data: &[u8]) -> SalvageScan {
    let mut summary = SalvageSummary::default();
    let mut opts = None;
    let mut docs = Vec::new();
    let mut tombstones = Vec::new();
    let sb = match decode_superblock(data, data.len() as u64) {
        Ok(sb) => Some(sb),
        Err(d) => {
            summary.dropped.push(format!("superblock: {d}"));
            summary
                .dropped
                .push("documents: unreachable without a superblock".to_string());
            None
        }
    };
    if let Some(sb) = sb {
        let meta = &data[sb.meta_off as usize..];
        let mut walk = FrameWalk::at(meta, 0);
        let mut doc_rids: Vec<RecordId> = Vec::new();
        let mut crcs: Option<Vec<u32>> = None;
        for (i, (id, name)) in V4_FRAMES.into_iter().enumerate() {
            match walk.next_id(id) {
                Err(d) => {
                    summary.dropped.push(format!("{name}: {d}"));
                    for (_, rest) in &V4_FRAMES[i + 1..] {
                        summary
                            .dropped
                            .push(format!("{rest}: unreachable after a structural failure"));
                    }
                    break;
                }
                Ok(fr) if !fr.crc_ok => {
                    summary
                        .dropped
                        .push(format!("{name}: {}", checksum_detail(&fr)));
                }
                Ok(fr) => match id {
                    0 => match decode_whole(fr.payload, |r| decode_options(r, true)) {
                        Ok(o) => opts = Some(o),
                        Err(d) => summary.dropped.push(format!("options: {d}")),
                    },
                    V4_DOC_DIR => match decode_whole(fr.payload, decode_doc_dir) {
                        Ok(r) => doc_rids = r,
                        Err(d) => summary.dropped.push(format!("docdir: {d}")),
                    },
                    6 => match decode_whole(fr.payload, decode_tombstones) {
                        Ok(t) => tombstones = t,
                        Err(d) => summary.dropped.push(format!("tombstones: {d}")),
                    },
                    V4_PAGE_CRCS => crcs = decode_whole(fr.payload, decode_page_crcs).ok(),
                    // Derived sections are rebuilt regardless.
                    _ => {}
                },
            }
        }
        if !doc_rids.is_empty() {
            match FileBackend::open_at(src, PAGE_SIZE as u64, sb.page_count) {
                Ok(backend) => {
                    let pool_arc = BufferPool::shared(64);
                    let pool = match crcs {
                        Some(c) if c.len() as u64 == sb.page_count => {
                            pool_arc.attach_verified(Box::new(backend), c)
                        }
                        _ => {
                            summary.dropped.push(
                                "page-crcs: unavailable; documents read unverified".to_string(),
                            );
                            pool_arc.attach(Box::new(backend))
                        }
                    };
                    // Point reads need only the pool; the directory is for
                    // scans, so an empty one is fine here.
                    let heap = HeapFile::attach(
                        pool,
                        HeapDirectory {
                            data_pages: Vec::new(),
                            records: 0,
                            overflow_pages: 0,
                        },
                    );
                    for (i, rid) in doc_rids.iter().enumerate() {
                        match heap.try_get(*rid) {
                            Ok(bytes) => match String::from_utf8(bytes) {
                                Ok(xml) => docs.push(xml),
                                Err(_) => {
                                    summary
                                        .dropped
                                        .push(format!("document {i}: not valid UTF-8"));
                                    summary.skipped_documents += 1;
                                }
                            },
                            Err(e) => {
                                summary.dropped.push(format!("document {i}: {e}"));
                                summary.skipped_documents += 1;
                            }
                        }
                    }
                }
                Err(e) => summary
                    .dropped
                    .push(format!("documents: cannot reopen the page file: {e}")),
            }
        }
    }
    summary.options_recovered = opts.is_some();
    let mut opts = opts.unwrap_or_else(FixOptions::collection);
    // The salvaged output is a fresh in-memory rebuild; persist it v3.
    opts.storage = StorageMode::InMemory;
    (opts, docs, tombstones, summary)
}

fn salvage_scan_v3(data: &[u8]) -> SalvageScan {
    let mut summary = SalvageSummary::default();
    let mut opts = None;
    let mut docs = Vec::new();
    let mut tombstones = Vec::new();
    let mut walk = FrameWalk::new(data);
    let mut structural_failure = false;
    for (i, s) in Section::ALL.into_iter().enumerate() {
        match walk.next(s) {
            Err(d) => {
                summary.dropped.push(format!("{}: {d}", s.name()));
                for rest in &Section::ALL[i + 1..] {
                    summary.dropped.push(format!(
                        "{}: unreachable after a structural failure",
                        rest.name()
                    ));
                }
                structural_failure = true;
                break;
            }
            Ok(fr) if !fr.crc_ok => {
                summary
                    .dropped
                    .push(format!("{}: {}", s.name(), checksum_detail(&fr)));
            }
            Ok(fr) => match s {
                Section::Options => match decode_whole(fr.payload, |r| decode_options(r, true)) {
                    Ok(o) => opts = Some(o),
                    Err(d) => summary.dropped.push(format!("options: {d}")),
                },
                Section::Documents => match decode_whole(fr.payload, decode_documents) {
                    Ok(d) => docs = d,
                    Err(d) => summary.dropped.push(format!("documents: {d}")),
                },
                Section::Tombstones => match decode_whole(fr.payload, decode_tombstones) {
                    Ok(t) => tombstones = t,
                    Err(d) => summary.dropped.push(format!("tombstones: {d}")),
                },
                // Derived sections are rebuilt regardless; nothing to keep.
                _ => {}
            },
        }
    }
    if !structural_failure && data.get(walk.pos) == Some(&Section::Delta.id()) {
        // The delta frame is derived content — the documents it indexes
        // are already in the documents section, and salvage rebuilds the
        // whole index from those — so it is never carried over.
        summary
            .dropped
            .push("delta: derived content, rebuilt from documents".to_string());
    }
    summary.options_recovered = opts.is_some();
    (
        opts.unwrap_or_else(FixOptions::collection),
        docs,
        tombstones,
        summary,
    )
}

/// Tolerant scan of a legacy v2 body: sequential, keep-until-first-failure
/// (without checksums there is no way to resync past damage).
fn salvage_scan_v2(body: &[u8]) -> SalvageScan {
    let mut summary = SalvageSummary::default();
    let mut r = SliceReader::new(body);
    let opts = match decode_options(&mut r, false) {
        Ok(o) => Some(o),
        Err(d) => {
            summary.dropped.push(format!("options: {d}"));
            None
        }
    };
    let mut docs = Vec::new();
    if opts.is_some() {
        match decode_labels(&mut r) {
            Ok(_) => {
                // Keep every document that decodes before the first failure.
                match r.u32() {
                    Ok(n) => {
                        for _ in 0..n {
                            match r.string("document") {
                                Ok(s) => docs.push(s),
                                Err(d) => {
                                    summary.dropped.push(format!("documents: {d}"));
                                    break;
                                }
                            }
                        }
                    }
                    Err(d) => summary.dropped.push(format!("documents: {d}")),
                }
            }
            Err(d) => {
                summary.dropped.push(format!("labels: {d}"));
                summary
                    .dropped
                    .push("documents: unreachable after a labels failure".to_string());
            }
        }
    } else {
        summary
            .dropped
            .push("documents: unreachable after an options failure".to_string());
    }
    let mut tombstones = Vec::new();
    if summary.dropped.is_empty() {
        let rest: Result<Vec<u32>, String> = (|| {
            decode_edges(&mut r)?;
            decode_btree(&mut r)?;
            decode_heap(&mut r)?;
            decode_tombstones(&mut r)
        })();
        match rest {
            Ok(t) => tombstones = t,
            Err(d) => summary.dropped.push(format!("tombstones: {d}")),
        }
    } else {
        summary
            .dropped
            .push("tombstones: unreachable in a damaged legacy file".to_string());
    }
    summary.options_recovered = opts.is_some();
    (
        opts.unwrap_or_else(FixOptions::collection),
        docs,
        tombstones,
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FixIndex;
    use fix_storage::FaultKind;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml(
            "<bib><article><author><email/></author><title>holistic</title><ee/></article></bib>",
        )
        .unwrap();
        c.add_xml("<bib><book><author><phone/></author><title>web data</title></book></bib>")
            .unwrap();
        c.add_xml(
            "<bib><article><author><phone/><email/></author><title>joins</title></article></bib>",
        )
        .unwrap();
        c
    }

    fn same_outcomes(a: &(Collection, FixIndex), b: &(Collection, FixIndex), queries: &[&str]) {
        for q in queries {
            let ra = a.1.query(&a.0, q).unwrap();
            let rb = b.1.query(&b.0, q).unwrap();
            assert_eq!(ra.results, rb.results, "results differ on {q}");
            assert_eq!(ra.metrics, rb.metrics, "metrics differ on {q}");
        }
    }

    #[test]
    fn round_trip_unclustered() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("uncl.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.0.len(), 3);
        assert_eq!(loaded.1.entry_count(), idx.entry_count());
        same_outcomes(
            &(coll, idx),
            &loaded,
            &[
                "//article[author]/ee",
                "//author[phone][email]",
                "//book/title",
            ],
        );
    }

    #[test]
    fn round_trip_clustered_with_values() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4)
                .clustered()
                .with_values(16)
                .with_edge_bloom(),
        );
        let path = temp("clust.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert!(loaded.1.options().clustered);
        assert_eq!(loaded.1.options().value_beta, Some(16));
        assert!(loaded.1.options().edge_bloom);
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn collection_mode_round_trip() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::collection());
        let path = temp("coll.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().depth_limit, 0);
        same_outcomes(&(coll, idx), &loaded, &["//article/title", "/bib/book"]);
    }

    #[test]
    fn parse_depth_limit_round_trips() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_max_parse_depth(33),
        );
        let path = temp("depth.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().max_parse_depth, 33);
        // "Unlimited" survives the u32 saturation too.
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_max_parse_depth(usize::MAX),
        );
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().max_parse_depth, usize::MAX);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = temp("bad.fixdb");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(matches!(
            load_impl(&path),
            Err(FixError::Corrupt { section, .. }) if section == "header"
        ));
        std::fs::write(&path, b"FIXDB\x00\x01\x00trunc").unwrap();
        assert!(load_impl(&path).is_err());
        std::fs::write(&path, b"FIX").unwrap();
        assert!(matches!(load_impl(&path), Err(FixError::Corrupt { .. })));
    }

    #[test]
    fn v2_files_still_load() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).clustered().with_values(16),
        );
        let path = temp("legacy.fixdb");
        save_v2_unchecked(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.0.len(), 3);
        // v2 predates the persisted parse-depth knob: the default applies.
        assert_eq!(
            loaded.1.options().max_parse_depth,
            fix_xml::DEFAULT_MAX_DEPTH
        );
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4).clustered());
        let path = temp("flip.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            match load_bytes(&bad) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("flip at {i} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("trunc.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for t in (0..good.len()).step_by(11).chain([good.len() - 1]) {
            match load_bytes(&good[..t]) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("truncation to {t} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("truncation to {t} bytes went undetected"),
            }
        }
    }

    #[test]
    fn verify_names_the_corrupt_section() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("verify.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();

        let clean = verify_bytes(&good);
        assert!(clean.is_ok(), "{clean}");
        assert_eq!(clean.version, 3);
        assert_eq!(clean.sections.len(), 8, "7 sections + footer");

        // Flip one byte inside the documents payload.
        let mut walk = FrameWalk::new(&good);
        walk.next(Section::Options).unwrap();
        walk.next(Section::Labels).unwrap();
        let fr = walk.next(Section::Documents).unwrap();
        let target = fr.offset + FRAME_HEADER_LEN + 3;
        let mut bad = good.clone();
        bad[target] ^= 0xFF;
        let report = verify_bytes(&bad);
        assert!(!report.is_ok());
        // Both the section CRC and the footer's whole-file CRC notice.
        assert_eq!(report.corrupt_count(), 2, "{report}");
        let doc = report
            .sections
            .iter()
            .find(|s| s.section == "documents")
            .unwrap();
        match &doc.status {
            SectionStatus::Corrupt(d) => {
                assert!(d.contains("checksum mismatch"), "{d}");
                assert!(d.contains("0x"), "detail should carry an offset: {d}");
            }
            SectionStatus::Ok => panic!("documents should be corrupt: {report}"),
        }
        assert!(matches!(
            report.sections.last().unwrap().status,
            SectionStatus::Corrupt(_)
        ));
    }

    #[test]
    fn salvage_rebuilds_from_intact_sections() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4).clustered());
        let src = temp("salv-src.fixdb");
        let dst = temp("salv-dst.fixdb");
        save_impl(&src, &coll, &idx).unwrap();
        let good = std::fs::read(&src).unwrap();

        // Corrupt the B-tree frame: load must fail, salvage must recover.
        let mut walk = FrameWalk::new(&good);
        for s in [
            Section::Options,
            Section::Labels,
            Section::Documents,
            Section::Edges,
        ] {
            walk.next(s).unwrap();
        }
        let fr = walk.next(Section::BTree).unwrap();
        let mut bad = good.clone();
        bad[fr.offset + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&src, &bad).unwrap();
        assert!(matches!(
            load_impl(&src),
            Err(FixError::Corrupt { section, .. }) if section == "btree"
        ));

        let summary = salvage_file(&src, &dst).unwrap();
        assert_eq!(summary.documents, 3);
        assert_eq!(summary.skipped_documents, 0);
        assert!(summary.options_recovered);
        assert!(summary.dropped.iter().any(|d| d.starts_with("btree")));
        let recovered = load_impl(&dst).unwrap();
        assert!(verify_file(&dst).unwrap().is_ok());
        same_outcomes(
            &(coll, idx),
            &recovered,
            &["//article[author]/ee", "//author[phone][email]"],
        );
    }

    #[test]
    fn delta_round_trips_and_stays_optional() {
        for clustered in [false, true] {
            let mut coll = sample_collection();
            let mut opts = FixOptions::large_document(4).with_compact_ratio(0.0);
            opts.clustered = clustered;
            let mut idx = FixIndex::build(&mut coll, opts);
            let path = temp(&format!("delta-{clustered}.fixdb"));

            // Empty delta: the file carries no delta frame — byte-identical
            // to the pre-delta v3 layout (8 verify rows: 7 sections+footer).
            save_impl(&path, &coll, &idx).unwrap();
            let report = verify_file(&path).unwrap();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.sections.len(), 8);
            assert!(!report.sections.iter().any(|s| s.section == "delta"));

            // Insert post-build: the save grows an optional delta frame.
            idx.insert_xml(
                &mut coll,
                "<bib><book><author><phone/></author></book></bib>",
            )
            .unwrap();
            idx.insert_xml(
                &mut coll,
                "<bib><article><author><email/></author><ee/></article></bib>",
            )
            .unwrap();
            assert!(idx.delta_len() > 0);
            save_impl(&path, &coll, &idx).unwrap();
            let report = verify_file(&path).unwrap();
            assert!(report.is_ok(), "{report}");
            assert_eq!(report.sections.len(), 9, "7 sections + delta + footer");
            assert!(report.sections.iter().any(|s| s.section == "delta"));

            let loaded = load_impl(&path).unwrap();
            assert_eq!(loaded.1.delta_len(), idx.delta_len());
            assert_eq!(loaded.1.entry_count(), idx.entry_count());
            let a: Vec<_> = idx.entries().collect();
            let b: Vec<_> = loaded.1.entries().collect();
            assert_eq!(a, b, "merged entry stream must survive the round trip");
            if clustered {
                assert_eq!(idx.clustered_records(), loaded.1.clustered_records());
            }
            same_outcomes(
                &(coll, idx),
                &loaded,
                &["//article[author]/ee", "//author[email]"],
            );
        }
    }

    #[test]
    fn delta_byte_flips_are_detected() {
        let mut coll = sample_collection();
        let mut idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_compact_ratio(0.0),
        );
        idx.insert_xml(
            &mut coll,
            "<bib><article><author><email/></author><ee/></article></bib>",
        )
        .unwrap();
        let path = temp("delta-flip.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            match load_bytes(&bad) {
                Err(FixError::Corrupt { .. }) => {}
                Err(e) => panic!("flip at {i} produced a non-Corrupt error: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn salvage_treats_the_delta_as_derived() {
        let mut coll = sample_collection();
        let mut idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4).with_compact_ratio(0.0),
        );
        idx.insert_xml(
            &mut coll,
            "<bib><article><author><email/></author><ee/></article></bib>",
        )
        .unwrap();
        let src = temp("delta-salv-src.fixdb");
        let dst = temp("delta-salv-dst.fixdb");
        save_impl(&src, &coll, &idx).unwrap();
        let good = std::fs::read(&src).unwrap();

        // Corrupt the delta frame itself: load fails naming it; salvage
        // recovers every document (the documents section holds them all)
        // and rebuilds a compacted, delta-free index.
        let mut walk = FrameWalk::new(&good);
        for s in Section::ALL {
            walk.next(s).unwrap();
        }
        let fr = walk.next(Section::Delta).unwrap();
        let mut bad = good.clone();
        bad[fr.offset + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&src, &bad).unwrap();
        assert!(matches!(
            load_impl(&src),
            Err(FixError::Corrupt { section, .. }) if section == "delta"
        ));
        let summary = salvage_file(&src, &dst).unwrap();
        assert_eq!(summary.documents, 4, "post-build insert is recovered too");
        let recovered = load_impl(&dst).unwrap();
        assert_eq!(recovered.1.delta_len(), 0);
        assert_eq!(recovered.1.entry_count(), idx.entry_count());
        // Same answers; delta_candidates legitimately differs (the
        // salvaged index folded everything into the base).
        let q = "//article[author]/ee";
        let ra = idx.query(&coll, q).unwrap();
        let rb = recovered.1.query(&recovered.0, q).unwrap();
        assert_eq!(ra.results, rb.results);
        assert_eq!(ra.metrics.candidates, rb.metrics.candidates);
        assert_eq!(ra.metrics.producing, rb.metrics.producing);
        assert_eq!(rb.metrics.delta_candidates, 0);
    }

    #[test]
    fn injected_faults_leave_the_old_database_intact() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("atomic.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let before = std::fs::read(&path).unwrap();

        let mut coll2 = Collection::new();
        coll2.add_xml("<solo><a/></solo>").unwrap();
        let idx2 = FixIndex::build(&mut coll2, FixOptions::collection());
        for kind in [
            FaultKind::Error,
            FaultKind::Torn { keep: 2 },
            FaultKind::Truncate,
        ] {
            let err = save_with_faults(&path, &coll2, &idx2, Some(FaultPlan::new(3, kind)));
            assert!(err.is_err(), "{kind:?} should abort the save");
            assert_eq!(
                std::fs::read(&path).unwrap(),
                before,
                "{kind:?} must leave the old file byte-identical"
            );
            assert!(load_impl(&path).is_ok());
        }
        // And without a fault the new content replaces the old atomically.
        save_with_faults(&path, &coll2, &idx2, None).unwrap();
        assert_eq!(load_impl(&path).unwrap().0.len(), 1);
    }

    // ---------------------------------------------------- paged format (v4)

    fn paged_opts() -> FixOptions {
        let mut o = FixOptions::large_document(4);
        o.storage = StorageMode::Paged;
        o
    }

    #[test]
    fn paged_round_trip_unclustered() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-uncl.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V4);
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().storage, StorageMode::Paged);
        assert_eq!(loaded.0.len(), 3);
        same_outcomes(
            &(coll, idx),
            &loaded,
            &[
                "//article[author]/ee",
                "//author[phone][email]",
                "//book/title",
            ],
        );
    }

    #[test]
    fn paged_round_trip_clustered_with_values_and_delta() {
        let mut coll = sample_collection();
        let mut opts = FixOptions::large_document(4).clustered().with_values(16);
        opts.storage = StorageMode::Paged;
        let mut idx = FixIndex::build(&mut coll, opts);
        // A delta run rides along in the metadata tail.
        idx.insert_xml(&mut coll, "<bib><article><author/><ee/></article></bib>")
            .unwrap();
        let path = temp("paged-clust.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert!(loaded.1.options().clustered);
        assert_eq!(loaded.0.len(), 4);
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn paged_open_reads_only_the_metadata_tail() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-cold.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();
        let (_, _, bytes) = load_any(&path, None).unwrap();
        assert!(
            bytes < file_len,
            "open read {bytes} of {file_len} bytes — not metadata-only"
        );
    }

    #[test]
    fn paged_verify_reports_clean_pages() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-verify.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let report = verify_file(&path).unwrap();
        assert_eq!(report.version, 4);
        assert!(report.is_ok(), "{report}");
        assert!(report.sections.iter().any(|s| s.section == "pages"));
    }

    #[test]
    fn paged_torn_page_is_isolated() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-torn.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        // Flip a byte in the middle of the first data page (the document
        // heap) — metadata stays intact, exactly one page goes bad.
        let mut data = std::fs::read(&path).unwrap();
        let page0 = PAGE_SIZE + PAGE_SIZE / 2;
        data[page0] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let report = verify_bytes(&data);
        assert_eq!(report.version, 4);
        assert_eq!(report.corrupt_count(), 1, "{report}");
        assert!(report
            .sections
            .iter()
            .any(|s| s.section == "page 0" && matches!(s.status, SectionStatus::Corrupt(_))));

        // Salvage recovers every document NOT on the torn page.
        let dst = temp("paged-torn-out.fixdb");
        let summary = salvage_file(&path, &dst).unwrap();
        assert!(
            summary.documents + summary.skipped_documents > 0,
            "{summary}"
        );
        assert!(!summary.dropped.is_empty(), "{summary}");
        let recovered = load_impl(&dst).unwrap();
        assert_eq!(recovered.0.len(), summary.documents);
    }

    #[test]
    fn paged_salvage_clean_file_recovers_everything() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-salv.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let dst = temp("paged-salv-out.fixdb");
        let summary = salvage_file(&path, &dst).unwrap();
        assert_eq!(summary.documents, 3, "{summary}");
        assert_eq!(summary.skipped_documents, 0);
        assert!(summary.options_recovered);
        // The rebuilt output is a fully materialized v3 file.
        assert_eq!(&std::fs::read(&dst).unwrap()[..8], MAGIC_V3);
        assert!(load_impl(&dst).is_ok());
    }

    #[test]
    fn paged_corrupt_metadata_is_rejected_at_open() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, paged_opts());
        let path = temp("paged-meta.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Superblock damage.
        let mut data = clean.clone();
        data[12] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            load_any(&path, None),
            Err(FixError::Corrupt { ref section, .. }) if section == "superblock"
        ));
        // Metadata-tail damage (the label frame's bytes).
        let mut data = clean.clone();
        let meta_off = u64::from_le_bytes(clean[20..28].try_into().unwrap()) as usize;
        data[meta_off + 40] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            load_any(&path, None),
            Err(FixError::Corrupt { .. })
        ));
    }

    #[test]
    fn paged_tombstones_round_trip() {
        let mut coll = sample_collection();
        let mut idx = FixIndex::build(&mut coll, paged_opts());
        idx.removed.insert(DocId(1));
        let path = temp("paged-tomb.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert!(loaded.1.removed.contains(&DocId(1)));
        let out = loaded.1.query(&loaded.0, "//book/title").unwrap();
        assert!(out.results.is_empty(), "tombstoned doc still queried");
    }
}
