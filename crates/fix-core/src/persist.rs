//! Database persistence: one self-contained file holding the collection
//! (documents + shared label table) and the index (options, edge
//! dictionary, B-tree entries, clustered copies).
//!
//! The format is a simple length-prefixed little-endian binary layout. The
//! B-tree is persisted *logically* (sorted key/value pairs) and rebuilt by
//! a bottom-up bulk load, which keeps the format independent of
//! page-layout details. Clustered heap records are replayed in insertion
//! order *before* the B-tree load — the same allocation order construction
//! uses — which reproduces identical record ids (the heap's append is
//! deterministic).

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use fix_btree::BTree;
use fix_spectral::{EdgeEncoder, FeatureMode};
use fix_storage::{BufferPool, HeapFile};
use fix_xml::LabelId;

use crate::builder::{BuildStats, FixIndex};
use crate::collection::Collection;
use crate::key::KEY_LEN;
use crate::options::{FixOptions, RefineOp};
use crate::values::ValueHasher;

const MAGIC: &[u8; 8] = b"FIXDB\x00\x02\x00";

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_bytes(w: &mut impl Write, b: &[u8]) -> io::Result<()> {
    put_u64(w, b.len() as u64)?;
    w.write_all(b)
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn get_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let n = get_u64(r)? as usize;
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    Ok(b)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt FIX database: {msg}"),
    )
}

pub(crate) fn save_impl(path: &Path, coll: &Collection, idx: &FixIndex) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    w.write_all(MAGIC)?;

    // Options.
    let o = idx.options();
    put_u32(&mut w, o.depth_limit as u32)?;
    put_u32(&mut w, u32::from(o.clustered))?;
    put_u32(&mut w, o.value_beta.unwrap_or(0))?;
    put_u32(&mut w, o.pool_pages as u32)?;
    put_u32(
        &mut w,
        match o.extractor.mode {
            FeatureMode::SymmetricNorm => 0,
            FeatureMode::SkewSpectral => 1,
        },
    )?;
    put_u32(&mut w, o.extractor.max_edges as u32)?;
    let flags = u32::from(o.extended_features) | (u32::from(o.edge_bloom) << 1);
    put_u32(&mut w, flags)?;

    // Label table (ids are the positions).
    put_u32(&mut w, coll.labels.len() as u32)?;
    for (_, name) in coll.labels.iter() {
        put_bytes(&mut w, name.as_bytes())?;
    }

    // Documents, serialized XML in id order.
    put_u32(&mut w, coll.len() as u32)?;
    for (_, d) in coll.iter() {
        put_bytes(&mut w, fix_xml::to_xml_string(d, &coll.labels).as_bytes())?;
    }

    // Edge dictionary (sorted for determinism).
    let mut edges: Vec<((LabelId, LabelId), f64)> = idx.encoder.iter().collect();
    edges.sort_by_key(|((a, b), _)| (a.0, b.0));
    put_u32(&mut w, edges.len() as u32)?;
    for ((a, b), weight) in edges {
        put_u32(&mut w, a.0)?;
        put_u32(&mut w, b.0)?;
        put_f64(&mut w, weight)?;
    }

    // B-tree entries in key order.
    put_u64(&mut w, idx.btree.len())?;
    for (k, v) in idx.btree.iter() {
        w.write_all(&k)?;
        put_u64(&mut w, v)?;
    }

    // Clustered heap records in insertion order.
    match &idx.clustered {
        Some(heap) => {
            put_u64(&mut w, heap.len())?;
            for (_, record) in heap.scan() {
                put_bytes(&mut w, &record)?;
            }
        }
        None => put_u64(&mut w, u64::MAX)?,
    }

    // Tombstones.
    let mut removed: Vec<u32> = idx.removed.iter().map(|d| d.0).collect();
    removed.sort_unstable();
    put_u32(&mut w, removed.len() as u32)?;
    for d in removed {
        put_u32(&mut w, d)?;
    }
    w.flush()
}

pub(crate) fn load_impl(path: &Path) -> io::Result<(Collection, FixIndex)> {
    let file = std::fs::File::open(path)?;
    let mut r = io::BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }

    let depth_limit = get_u32(&mut r)? as usize;
    let clustered = get_u32(&mut r)? != 0;
    let value_beta = match get_u32(&mut r)? {
        0 => None,
        b => Some(b),
    };
    let pool_pages = get_u32(&mut r)? as usize;
    let mode = match get_u32(&mut r)? {
        0 => FeatureMode::SymmetricNorm,
        1 => FeatureMode::SkewSpectral,
        _ => return Err(corrupt("unknown feature mode")),
    };
    let max_edges = get_u32(&mut r)? as usize;
    let flags = get_u32(&mut r)?;
    let mut opts = if depth_limit == 0 {
        FixOptions::collection()
    } else {
        FixOptions::large_document(depth_limit)
    };
    opts.clustered = clustered;
    opts.value_beta = value_beta;
    opts.pool_pages = pool_pages.max(1);
    opts.extractor.mode = mode;
    opts.extractor.max_edges = max_edges;
    opts.extended_features = flags & 1 != 0;
    opts.edge_bloom = flags & 2 != 0;
    opts.refine = RefineOp::default();

    // Label table: intern in saved order so ids are reproduced exactly.
    let mut coll = Collection::new();
    let n_labels = get_u32(&mut r)?;
    for i in 0..n_labels {
        let name = String::from_utf8(get_bytes(&mut r)?).map_err(|_| corrupt("label utf8"))?;
        let id = coll.labels.intern(&name);
        if id.0 != i {
            return Err(corrupt("label table out of order"));
        }
    }
    let n_docs = get_u32(&mut r)?;
    for _ in 0..n_docs {
        let xml = String::from_utf8(get_bytes(&mut r)?).map_err(|_| corrupt("document utf8"))?;
        coll.add_xml(&xml)
            .map_err(|e| corrupt(&format!("document reparse: {e}")))?;
    }

    let mut encoder = EdgeEncoder::new();
    let n_edges = get_u32(&mut r)?;
    for _ in 0..n_edges {
        let a = LabelId(get_u32(&mut r)?);
        let b = LabelId(get_u32(&mut r)?);
        let w = get_f64(&mut r)?;
        encoder.restore(a, b, w);
    }

    let n_entries = get_u64(&mut r)?;
    let mut entries: Vec<(Vec<u8>, u64)> = Vec::new();
    for _ in 0..n_entries {
        let mut k = [0u8; KEY_LEN];
        r.read_exact(&mut k)?;
        let v = get_u64(&mut r)?;
        entries.push((k.to_vec(), v));
    }
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err(corrupt("B-tree entries out of order"));
    }

    // Replay heap appends *before* loading the B-tree: construction
    // allocates heap pages first and B-tree pages second, so replaying in
    // the same order reproduces the record ids the stored B-tree values
    // point at.
    let pool = Arc::new(BufferPool::in_memory(opts.pool_pages));
    let n_records = get_u64(&mut r)?;
    let clustered_heap = if n_records == u64::MAX {
        None
    } else {
        let mut heap = HeapFile::new(Arc::clone(&pool));
        for _ in 0..n_records {
            let record = get_bytes(&mut r)?;
            heap.append(&record);
        }
        Some(heap)
    };
    let btree = BTree::bulk_load(Arc::clone(&pool), KEY_LEN, entries);

    let stats = BuildStats {
        entries: btree.len(),
        btree_bytes: btree.stats().size_bytes,
        clustered_bytes: clustered_heap
            .as_ref()
            .map(HeapFile::size_bytes)
            .unwrap_or(0),
        ..Default::default()
    };
    let n_removed = get_u32(&mut r)?;
    let mut removed = std::collections::HashSet::new();
    for _ in 0..n_removed {
        removed.insert(crate::collection::DocId(get_u32(&mut r)?));
    }

    let hasher = opts.value_beta.map(ValueHasher::new);
    Ok((
        coll,
        FixIndex {
            opts,
            btree,
            encoder,
            hasher,
            clustered: clustered_heap,
            pool,
            stats,
            incremental: None,
            removed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FixIndex;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml(
            "<bib><article><author><email/></author><title>holistic</title><ee/></article></bib>",
        )
        .unwrap();
        c.add_xml("<bib><book><author><phone/></author><title>web data</title></book></bib>")
            .unwrap();
        c.add_xml(
            "<bib><article><author><phone/><email/></author><title>joins</title></article></bib>",
        )
        .unwrap();
        c
    }

    fn same_outcomes(a: &(Collection, FixIndex), b: &(Collection, FixIndex), queries: &[&str]) {
        for q in queries {
            let ra = a.1.query(&a.0, q).unwrap();
            let rb = b.1.query(&b.0, q).unwrap();
            assert_eq!(ra.results, rb.results, "results differ on {q}");
            assert_eq!(ra.metrics, rb.metrics, "metrics differ on {q}");
        }
    }

    #[test]
    fn round_trip_unclustered() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        let path = temp("uncl.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.0.len(), 3);
        assert_eq!(loaded.1.entry_count(), idx.entry_count());
        same_outcomes(
            &(coll, idx),
            &loaded,
            &[
                "//article[author]/ee",
                "//author[phone][email]",
                "//book/title",
            ],
        );
    }

    #[test]
    fn round_trip_clustered_with_values() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(4)
                .clustered()
                .with_values(16)
                .with_edge_bloom(),
        );
        let path = temp("clust.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert!(loaded.1.options().clustered);
        assert_eq!(loaded.1.options().value_beta, Some(16));
        assert!(loaded.1.options().edge_bloom);
        same_outcomes(
            &(coll, idx),
            &loaded,
            &["//article[author]/ee", r#"//article[title="joins"]/author"#],
        );
    }

    #[test]
    fn collection_mode_round_trip() {
        let mut coll = sample_collection();
        let idx = FixIndex::build(&mut coll, FixOptions::collection());
        let path = temp("coll.fixdb");
        save_impl(&path, &coll, &idx).unwrap();
        let loaded = load_impl(&path).unwrap();
        assert_eq!(loaded.1.options().depth_limit, 0);
        same_outcomes(&(coll, idx), &loaded, &["//article/title", "/bib/book"]);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = temp("bad.fixdb");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(load_impl(&path).is_err());
        std::fs::write(&path, b"FIXDB\x00\x01\x00trunc").unwrap();
        assert!(load_impl(&path).is_err());
    }
}
