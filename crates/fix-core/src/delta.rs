//! The delta index: entries accepted since the last build or compaction.
//!
//! `add_xml` after `build()` feature-extracts just the new document and
//! appends its entries here instead of splitting B+-tree pages. Scans
//! merge the base tree and the delta run into one key-ordered candidate
//! stream (see `FixIndex::scan_plan`), so query answers are identical to
//! a monolithic index at all times; compaction folds the delta back into
//! the base tree when it grows past `FixOptions::compact_ratio`.
//!
//! Clustered indexes store each delta entry's truncated-subtree copy
//! alongside the run (`copies`), in the same record format as the base
//! copy heap (8-byte pointer prefix + serialized XML), so compaction can
//! move records verbatim and refinement never touches primary storage.

use std::sync::atomic::{AtomicU64, Ordering};

use fix_btree::SortedRun;

use crate::key::{EntryPtr, KEY_LEN};

/// Cumulative delta counters for observability: size levels plus the
/// scan work charged to the delta side of merged scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Entries currently in the delta run.
    pub entries: u64,
    /// Resident bytes (run plus clustered copies).
    pub bytes: u64,
    /// Delta-side scans performed since build/load.
    pub scans: u64,
    /// Entries yielded by those scans.
    pub scanned_entries: u64,
    /// Wall time spent scanning the delta, in nanoseconds.
    pub scan_ns: u64,
}

/// A key-sorted run of post-build index entries, with (for clustered
/// indexes) their subtree copies.
#[derive(Debug, Default)]
pub(crate) struct DeltaIndex {
    run: SortedRun,
    /// Clustered copy records, indexed by the run's values. `None` for
    /// unclustered indexes, whose values are encoded [`EntryPtr`]s.
    copies: Option<Vec<Vec<u8>>>,
    scans: AtomicU64,
    scan_entries: AtomicU64,
    scan_ns: AtomicU64,
}

impl DeltaIndex {
    /// An empty delta; `clustered` selects whether copy records are kept.
    pub(crate) fn new(clustered: bool) -> Self {
        Self {
            run: SortedRun::new(KEY_LEN),
            copies: clustered.then(Vec::new),
            ..Self::default()
        }
    }

    /// Rebuilds a delta from persisted parts. `entries` must already be in
    /// key order (they are written in key order).
    pub(crate) fn from_sorted(
        entries: impl IntoIterator<Item = (Vec<u8>, u64)>,
        copies: Option<Vec<Vec<u8>>>,
    ) -> Self {
        let mut run = SortedRun::new(KEY_LEN);
        for (k, v) in entries {
            run.insert(&k, v);
        }
        Self {
            run,
            copies,
            ..Self::default()
        }
    }

    pub(crate) fn is_clustered(&self) -> bool {
        self.copies.is_some()
    }

    pub(crate) fn len(&self) -> u64 {
        self.run.len() as u64
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Resident size: the run plus any clustered copy records.
    pub(crate) fn size_bytes(&self) -> u64 {
        let copies: usize = self.copies.iter().flatten().map(|r| r.len()).sum::<usize>();
        (self.run.size_bytes() + copies) as u64
    }

    /// Inserts an unclustered entry (value = encoded [`EntryPtr`]).
    pub(crate) fn push(&mut self, key: &[u8], value: u64) {
        debug_assert!(self.copies.is_none(), "clustered deltas take records");
        self.run.insert(key, value);
    }

    /// Inserts a clustered entry with its copy record (8-byte pointer
    /// prefix + serialized subtree, the base heap's record format).
    pub(crate) fn push_record(&mut self, key: &[u8], record: Vec<u8>) {
        let copies = self.copies.as_mut().expect("unclustered deltas take ptrs");
        let value = copies.len() as u64;
        copies.push(record);
        self.run.insert(key, value);
    }

    /// All entries in key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> + '_ {
        self.run.iter()
    }

    /// Entries with `start <= key < end` (`BTree::range` semantics).
    pub(crate) fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], u64)> + 'a {
        self.run.range(start, end)
    }

    /// The copy record a clustered delta value resolves to.
    pub(crate) fn record(&self, value: u64) -> &[u8] {
        &self.copies.as_ref().expect("clustered delta")[value as usize]
    }

    /// Resolves a clustered delta value to its `(ptr, xml bytes)`, the
    /// delta-side counterpart of `FixIndex::clustered_fetch`.
    pub(crate) fn fetch(&self, value: u64) -> (EntryPtr, Vec<u8>) {
        let record = self.record(value);
        let ptr = EntryPtr::from_u64(u64::from_le_bytes(
            record[0..8].try_into().expect("8-byte ptr prefix"),
        ));
        (ptr, record[8..].to_vec())
    }

    /// The copy records in key order (compaction and diagnostics).
    pub(crate) fn copies(&self) -> Option<&[Vec<u8>]> {
        self.copies.as_deref()
    }

    /// Charges one delta-side scan to the counters (`Relaxed`: the values
    /// are monotone telemetry, never synchronization).
    pub(crate) fn note_scan(&self, entries: u64, ns: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.scan_entries.fetch_add(entries, Ordering::Relaxed);
        self.scan_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Seeds the scan counters from a predecessor delta's snapshot, so
    /// scan totals stay cumulative across compactions (size levels are
    /// derived from the run and reset naturally).
    pub(crate) fn carry_scan_history(&self, prior: &DeltaStats) {
        self.scans.store(prior.scans, Ordering::Relaxed);
        self.scan_entries
            .store(prior.scanned_entries, Ordering::Relaxed);
        self.scan_ns.store(prior.scan_ns, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub(crate) fn stats(&self) -> DeltaStats {
        DeltaStats {
            entries: self.len(),
            bytes: self.size_bytes(),
            scans: self.scans.load(Ordering::Relaxed),
            scanned_entries: self.scan_entries.load(Ordering::Relaxed),
            scan_ns: self.scan_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::DocId;

    #[test]
    fn unclustered_entries_round_trip() {
        let mut d = DeltaIndex::new(false);
        assert!(d.is_empty());
        let ptr = EntryPtr {
            doc: DocId(3),
            node: 7,
        };
        d.push(&[1u8; KEY_LEN], ptr.to_u64());
        d.push(&[0u8; KEY_LEN], 0);
        assert_eq!(d.len(), 2);
        let vals: Vec<u64> = d.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![0, ptr.to_u64()]);
        assert!(!d.is_clustered());
        assert!(d.size_bytes() > 0);
    }

    #[test]
    fn clustered_records_resolve() {
        let mut d = DeltaIndex::new(true);
        let ptr = EntryPtr {
            doc: DocId(1),
            node: 0,
        };
        let mut record = ptr.to_u64().to_le_bytes().to_vec();
        record.extend_from_slice(b"<a/>");
        d.push_record(&[2u8; KEY_LEN], record);
        let (p, xml) = d.fetch(0);
        assert_eq!(p, ptr);
        assert_eq!(xml, b"<a/>");
        assert_eq!(d.copies().unwrap().len(), 1);
    }

    #[test]
    fn scan_counters_accumulate() {
        let d = DeltaIndex::new(false);
        d.note_scan(5, 100);
        d.note_scan(2, 50);
        let s = d.stats();
        assert_eq!(s.scans, 2);
        assert_eq!(s.scanned_entries, 7);
        assert_eq!(s.scan_ns, 150);
    }
}
