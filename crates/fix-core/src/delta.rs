//! The delta index: entries accepted since the last build or compaction,
//! held as an LSM-style stack of sorted runs.
//!
//! `add_xml` after `build()` feature-extracts just the new document and
//! appends its entries to the *active* run — the in-memory image of the
//! unsealed WAL tail segment. When that segment seals, `DeltaIndex::seal`
//! freezes the active run into the size-tiered [`TieredRuns`] stack
//! (level 0; merges cascade as levels fill, see `fix_btree::levels`).
//! Scans merge the base tree and **every** live run into one key-ordered
//! candidate stream (see `FixIndex::scan_plan`), so query answers are
//! identical to a monolithic index at all times; compaction folds the
//! whole stack back into the base tree when it grows past
//! `FixOptions::compact_ratio`.
//!
//! Entry keys embed per-entry sequence numbers and are globally unique,
//! so the merged stream is independent of how entries are distributed
//! across runs — tiering is invisible to the byte-identity invariants.
//!
//! Clustered indexes store each delta entry's truncated-subtree copy in a
//! single shared `copies` store (8-byte pointer prefix + serialized XML,
//! the base copy heap's record format). Run values index into that store,
//! which run merges never touch, so values stay stable as runs fold
//! together and compaction can still move records verbatim.

use std::sync::atomic::{AtomicU64, Ordering};

use fix_btree::levels::{KMergeIter, LevelStats, MergeDetail, TieredRuns};
use fix_btree::SortedRun;

use crate::key::{EntryPtr, KEY_LEN};

/// Cumulative delta counters for observability: size levels plus the
/// scan work charged to the delta side of merged scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Entries across all delta runs (active + frozen).
    pub entries: u64,
    /// Resident bytes (runs plus clustered copies).
    pub bytes: u64,
    /// Delta-side scans performed since build/load.
    pub scans: u64,
    /// Entries yielded by those scans.
    pub scanned_entries: u64,
    /// Wall time spent scanning the delta, in nanoseconds.
    pub scan_ns: u64,
    /// Entries in the active (unsealed-tail) run.
    pub tail_entries: u64,
    /// Frozen runs in the tier stack.
    pub frozen_runs: u64,
    /// Depth of the tier stack (occupied or shallower levels).
    pub levels: u64,
    /// Seals performed since build/load (active run → level 0).
    pub seals: u64,
    /// Run merges performed by tier cascades since build/load.
    pub run_merges: u64,
}

/// What one [`DeltaIndex::seal_detailed`] did: the frozen run's size and
/// every tier merge the freeze cascaded into.
#[derive(Debug, Clone)]
pub(crate) struct SealDetail {
    /// Entries frozen from the active run into level 0.
    pub entries: u64,
    /// Cascaded merges, in the order they ran (level 0 upward).
    pub merges: Vec<MergeDetail>,
}

/// Post-build index entries: an active run plus tiered frozen runs, with
/// (for clustered indexes) their subtree copies in one shared store.
#[derive(Debug)]
pub(crate) struct DeltaIndex {
    /// The unsealed WAL tail's entries; all inserts land here.
    active: SortedRun,
    /// Frozen runs, one per sealed WAL segment, size-tier merged.
    tiers: TieredRuns,
    /// Clustered copy records, indexed by run values. `None` for
    /// unclustered indexes, whose values are encoded [`EntryPtr`]s.
    copies: Option<Vec<Vec<u8>>>,
    seals: u64,
    run_merges: u64,
    scans: AtomicU64,
    scan_entries: AtomicU64,
    scan_ns: AtomicU64,
}

impl DeltaIndex {
    /// An empty delta; `clustered` selects whether copy records are kept,
    /// `fanout` the tier merge trigger (`FixOptions::tier_fanout`).
    pub(crate) fn new(clustered: bool, fanout: usize) -> Self {
        Self {
            active: SortedRun::new(KEY_LEN),
            tiers: TieredRuns::new(KEY_LEN, fanout),
            copies: clustered.then(Vec::new),
            seals: 0,
            run_merges: 0,
            scans: AtomicU64::new(0),
            scan_entries: AtomicU64::new(0),
            scan_ns: AtomicU64::new(0),
        }
    }

    /// Rebuilds a delta from persisted parts. `entries` must already be in
    /// key order (they are written in key order). The persisted stream is
    /// level-blind — everything loads into the active run, and WAL replay
    /// re-applies the seal points that rebuild the tier structure.
    pub(crate) fn from_sorted(
        entries: impl IntoIterator<Item = (Vec<u8>, u64)>,
        copies: Option<Vec<Vec<u8>>>,
        fanout: usize,
    ) -> Self {
        let mut active = SortedRun::new(KEY_LEN);
        for (k, v) in entries {
            active.insert(&k, v);
        }
        Self {
            active,
            copies,
            ..Self::new(false, fanout)
        }
    }

    pub(crate) fn is_clustered(&self) -> bool {
        self.copies.is_some()
    }

    pub(crate) fn len(&self) -> u64 {
        (self.active.len() + self.tiers.len()) as u64
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.active.is_empty() && self.tiers.is_empty()
    }

    /// Resident size: all runs plus any clustered copy records.
    pub(crate) fn size_bytes(&self) -> u64 {
        let copies: usize = self.copies.iter().flatten().map(|r| r.len()).sum::<usize>();
        (self.active.size_bytes() + self.tiers.size_bytes() + copies) as u64
    }

    /// Inserts an unclustered entry (value = encoded [`EntryPtr`]).
    pub(crate) fn push(&mut self, key: &[u8], value: u64) {
        debug_assert!(self.copies.is_none(), "clustered deltas take records");
        self.active.insert(key, value);
    }

    /// Inserts a clustered entry with its copy record (8-byte pointer
    /// prefix + serialized subtree, the base heap's record format).
    pub(crate) fn push_record(&mut self, key: &[u8], record: Vec<u8>) {
        let copies = self.copies.as_mut().expect("unclustered deltas take ptrs");
        let value = copies.len() as u64;
        copies.push(record);
        self.active.insert(key, value);
    }

    /// Freezes the active run into the tier stack — called when the WAL
    /// segment whose records it mirrors seals. Returns `false` when the
    /// active run was empty (nothing to freeze).
    pub(crate) fn seal(&mut self) -> bool {
        self.seal_detailed().is_some()
    }

    /// [`DeltaIndex::seal`] with narration detail: how many entries froze
    /// into the L0 run and what each cascaded tier merge did. `None` when
    /// the active run was empty.
    pub(crate) fn seal_detailed(&mut self) -> Option<SealDetail> {
        if self.active.is_empty() {
            return None;
        }
        let run = std::mem::replace(&mut self.active, SortedRun::new(KEY_LEN));
        let entries = run.len() as u64;
        let merges = self.tiers.push_run_detailed(run);
        self.run_merges += merges.len() as u64;
        self.seals += 1;
        Some(SealDetail { entries, merges })
    }

    /// Every live run, oldest data first (deepest frozen level outward,
    /// active run last). Scans build one candidate source per run and
    /// k-way merge them with the base stream.
    pub(crate) fn runs(&self) -> Vec<&SortedRun> {
        let mut out = self.tiers.runs();
        if !self.active.is_empty() {
            out.push(&self.active);
        }
        out
    }

    /// All entries across all runs, in key order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> + '_ {
        KMergeIter::new(self.runs().iter().map(|r| r.as_slice()).collect())
    }

    /// The copy record a clustered delta value resolves to.
    pub(crate) fn record(&self, value: u64) -> &[u8] {
        &self.copies.as_ref().expect("clustered delta")[value as usize]
    }

    /// Resolves a clustered delta value to its `(ptr, xml bytes)`, the
    /// delta-side counterpart of `FixIndex::clustered_fetch`.
    pub(crate) fn fetch(&self, value: u64) -> (EntryPtr, Vec<u8>) {
        let record = self.record(value);
        let ptr = EntryPtr::from_u64(u64::from_le_bytes(
            record[0..8].try_into().expect("8-byte ptr prefix"),
        ));
        (ptr, record[8..].to_vec())
    }

    /// The copy records in insertion order (compaction and diagnostics).
    pub(crate) fn copies(&self) -> Option<&[Vec<u8>]> {
        self.copies.as_deref()
    }

    /// Per-level shapes of the frozen tier stack (level 0 first).
    pub(crate) fn level_stats(&self) -> Vec<LevelStats> {
        self.tiers.level_stats()
    }

    /// Charges one delta-side scan to the counters (`Relaxed`: the values
    /// are monotone telemetry, never synchronization).
    pub(crate) fn note_scan(&self, entries: u64, ns: u64) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.scan_entries.fetch_add(entries, Ordering::Relaxed);
        self.scan_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Seeds the scan counters from a predecessor delta's snapshot, so
    /// scan totals stay cumulative across compactions (size levels are
    /// derived from the runs and reset naturally).
    pub(crate) fn carry_scan_history(&self, prior: &DeltaStats) {
        self.scans.store(prior.scans, Ordering::Relaxed);
        self.scan_entries
            .store(prior.scanned_entries, Ordering::Relaxed);
        self.scan_ns.store(prior.scan_ns, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub(crate) fn stats(&self) -> DeltaStats {
        DeltaStats {
            entries: self.len(),
            bytes: self.size_bytes(),
            scans: self.scans.load(Ordering::Relaxed),
            scanned_entries: self.scan_entries.load(Ordering::Relaxed),
            scan_ns: self.scan_ns.load(Ordering::Relaxed),
            tail_entries: self.active.len() as u64,
            frozen_runs: self.tiers.run_count() as u64,
            levels: self.tiers.level_stats().len() as u64,
            seals: self.seals,
            run_merges: self.run_merges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::DocId;

    const FANOUT: usize = 4;

    #[test]
    fn unclustered_entries_round_trip() {
        let mut d = DeltaIndex::new(false, FANOUT);
        assert!(d.is_empty());
        let ptr = EntryPtr {
            doc: DocId(3),
            node: 7,
        };
        d.push(&[1u8; KEY_LEN], ptr.to_u64());
        d.push(&[0u8; KEY_LEN], 0);
        assert_eq!(d.len(), 2);
        let vals: Vec<u64> = d.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![0, ptr.to_u64()]);
        assert!(!d.is_clustered());
        assert!(d.size_bytes() > 0);
    }

    #[test]
    fn clustered_records_resolve() {
        let mut d = DeltaIndex::new(true, FANOUT);
        let ptr = EntryPtr {
            doc: DocId(1),
            node: 0,
        };
        let mut record = ptr.to_u64().to_le_bytes().to_vec();
        record.extend_from_slice(b"<a/>");
        d.push_record(&[2u8; KEY_LEN], record);
        let (p, xml) = d.fetch(0);
        assert_eq!(p, ptr);
        assert_eq!(xml, b"<a/>");
        assert_eq!(d.copies().unwrap().len(), 1);
    }

    #[test]
    fn scan_counters_accumulate() {
        let d = DeltaIndex::new(false, FANOUT);
        d.note_scan(5, 100);
        d.note_scan(2, 50);
        let s = d.stats();
        assert_eq!(s.scans, 2);
        assert_eq!(s.scanned_entries, 7);
        assert_eq!(s.scan_ns, 150);
    }

    #[test]
    fn sealing_freezes_runs_but_keeps_the_merged_stream() {
        let mut d = DeltaIndex::new(false, 2);
        let mut expect: Vec<(Vec<u8>, u64)> = Vec::new();
        for i in 0..10u64 {
            let mut key = [0u8; KEY_LEN];
            key[0] = (i as u8) ^ 0x2A; // scatter so runs interleave
            key[KEY_LEN - 1] = i as u8; // unique keys
            d.push(&key, i);
            expect.push((key.to_vec(), i));
            if i % 3 == 2 {
                assert!(d.seal());
            }
        }
        assert!(!d.seal() || d.stats().tail_entries == 0);
        expect.sort();
        let got: Vec<(Vec<u8>, u64)> = d.iter().map(|(k, v)| (k.to_vec(), v)).collect();
        assert_eq!(got, expect, "tiering is invisible to iteration order");
        let s = d.stats();
        assert_eq!(s.entries, 10);
        assert!(s.seals >= 3);
        assert!(s.run_merges > 0, "fanout 2 must have cascaded merges");
        assert!(s.frozen_runs as usize <= d.level_stats().len() * 2);
    }

    #[test]
    fn clustered_values_survive_run_merges() {
        // Values index the shared copy store; merges must not disturb them.
        let mut d = DeltaIndex::new(true, 2);
        for i in 0..6u64 {
            let mut key = [0u8; KEY_LEN];
            key[0] = 5 - i as u8;
            let ptr = EntryPtr {
                doc: DocId(i as u32),
                node: 0,
            };
            let mut record = ptr.to_u64().to_le_bytes().to_vec();
            record.extend_from_slice(format!("<d{i}/>").as_bytes());
            d.push_record(&key, record);
            d.seal();
        }
        for (_, v) in d.iter() {
            let (ptr, xml) = d.fetch(v);
            assert_eq!(xml, format!("<d{}/>", ptr.doc.0).as_bytes());
        }
    }
}
