//! B-tree key and pointer encodings for FIX entries.
//!
//! The key is the paper's feature triple plus a sequence number that makes
//! every key unique: `root label (u32 BE) | λ_max (order-preserving f64) |
//! λ_min (order-preserving f64) | σ₂ (order-preserving f64) | seq (u32 BE)`
//! — 32 bytes (σ₂ participates only in the extended-features ablation). Sorting by
//! `(root, λ_max)` first is deliberate: the containment probe for a query
//! with features `(r, q_max, q_min)` is a scan of the `r` partition from
//! `λ_max = q_max` upward, filtering on `λ_min ≤ q_min` — exactly the
//! "histogram on the primary sorting key" access path Section 5 discusses.

use fix_btree::{decode_f64, encode_f64};
use fix_spectral::Features;
use fix_xml::LabelId;

use crate::collection::DocId;

/// Byte length of an encoded [`IndexKey`].
pub const KEY_LEN: usize = 40;

/// A decoded index key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexKey {
    /// Root label of the indexed pattern.
    pub root: LabelId,
    /// λ_max of the pattern.
    pub lmax: f64,
    /// λ_min of the pattern.
    pub lmin: f64,
    /// Second-largest eigenvalue magnitude (extended feature).
    pub sigma2: f64,
    /// Edge-set Bloom fingerprint (edge-fingerprint option).
    pub bloom: u64,
    /// Uniquifying sequence number.
    pub seq: u32,
}

impl IndexKey {
    /// Builds a key from features.
    pub fn new(f: &Features, seq: u32) -> Self {
        Self {
            root: f.root,
            lmax: f.lmax,
            lmin: f.lmin,
            sigma2: f.sigma2,
            bloom: f.bloom,
            seq,
        }
    }

    /// Encodes to the 40-byte order-preserving form.
    pub fn encode(&self) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        k[0..4].copy_from_slice(&self.root.0.to_be_bytes());
        k[4..12].copy_from_slice(&encode_f64(self.lmax));
        k[12..20].copy_from_slice(&encode_f64(self.lmin));
        k[20..28].copy_from_slice(&encode_f64(self.sigma2));
        k[28..36].copy_from_slice(&self.bloom.to_be_bytes());
        k[36..40].copy_from_slice(&self.seq.to_be_bytes());
        k
    }

    /// Decodes from the byte form.
    pub fn decode(k: &[u8]) -> Self {
        assert_eq!(k.len(), KEY_LEN);
        Self {
            root: LabelId(u32::from_be_bytes(k[0..4].try_into().expect("4"))),
            lmax: decode_f64(k[4..12].try_into().expect("8")),
            lmin: decode_f64(k[12..20].try_into().expect("8")),
            sigma2: decode_f64(k[20..28].try_into().expect("8")),
            bloom: u64::from_be_bytes(k[28..36].try_into().expect("8")),
            seq: u32::from_be_bytes(k[36..40].try_into().expect("4")),
        }
    }

    /// The scan start key for a containment probe: the first possible key
    /// with this root partition and `λ_max ≥ q.lmax` (widened by the same
    /// relative epsilon `Features::contains` uses, so boundary-equal
    /// entries are never skipped).
    pub fn scan_start(query: &Features) -> [u8; KEY_LEN] {
        let eps = 1e-9 * (1.0 + query.lmax.abs());
        let k = IndexKey {
            root: query.root,
            lmax: query.lmax - eps,
            lmin: f64::NEG_INFINITY,
            sigma2: f64::NEG_INFINITY,
            bloom: 0,
            seq: 0,
        };
        k.encode()
    }

    /// The exclusive scan end key: the start of the next root partition.
    pub fn scan_end(query: &Features) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        k[0..4].copy_from_slice(&(query.root.0 + 1).to_be_bytes());
        k
    }
}

/// A pointer into primary storage: `(document, element node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryPtr {
    /// The document.
    pub doc: DocId,
    /// Preorder id of the entry's root element.
    pub node: u32,
}

impl EntryPtr {
    /// Packs into a `u64` B-tree value.
    pub fn to_u64(self) -> u64 {
        ((self.doc.0 as u64) << 32) | self.node as u64
    }

    /// Unpacks from a `u64` B-tree value.
    pub fn from_u64(v: u64) -> Self {
        Self {
            doc: DocId((v >> 32) as u32),
            node: v as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(root: u32, lmax: f64) -> Features {
        Features {
            lmax,
            lmin: -lmax,
            sigma2: 0.0,
            root: LabelId(root),
            bloom: 0,
        }
    }

    #[test]
    fn key_round_trips() {
        let k = IndexKey {
            root: LabelId(7),
            lmax: 12.5,
            lmin: -12.5,
            sigma2: 3.25,
            bloom: 0xDEAD_BEEF,
            seq: 99,
        };
        assert_eq!(IndexKey::decode(&k.encode()), k);
    }

    #[test]
    fn keys_sort_by_root_then_lmax() {
        let a = IndexKey::new(&feat(1, 100.0), 5).encode();
        let b = IndexKey::new(&feat(2, 1.0), 0).encode();
        let c = IndexKey::new(&feat(2, 2.0), 0).encode();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn scan_bounds_bracket_the_partition() {
        let q = feat(3, 5.0);
        let start = IndexKey::scan_start(&q);
        let end = IndexKey::scan_end(&q);
        // An entry in the partition with lmax ≥ q.lmax is inside.
        let inside = IndexKey::new(&feat(3, 5.0), 0).encode();
        let bigger = IndexKey::new(&feat(3, 500.0), 0).encode();
        assert!(start <= inside && inside < end);
        assert!(start <= bigger && bigger < end);
        // A smaller lmax in the same partition is (just) before start…
        let smaller = IndexKey::new(&feat(3, 4.0), u32::MAX).encode();
        assert!(smaller < start);
        // …and other partitions are outside.
        let other = IndexKey::new(&feat(4, 5.0), 0).encode();
        assert!(other >= end);
    }

    #[test]
    fn unbounded_entries_sort_last_in_partition() {
        let inf = IndexKey::new(&Features::unbounded(LabelId(3)), 0).encode();
        let finite = IndexKey::new(&feat(3, 1e300), u32::MAX).encode();
        assert!(finite < inf);
        let q = feat(3, 42.0);
        assert!(IndexKey::scan_start(&q) < inf);
        assert!(inf < IndexKey::scan_end(&q));
    }

    #[test]
    fn entry_ptr_round_trips() {
        let p = EntryPtr {
            doc: DocId(123),
            node: 456789,
        };
        assert_eq!(EntryPtr::from_u64(p.to_u64()), p);
    }
}
