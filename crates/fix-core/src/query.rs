//! Query processing — Algorithm 2 (`INDEX-PROCESSOR`).
//!
//! 1. Decompose the path expression into twig blocks (Section 5); the top
//!    block carries the pruning.
//! 2. Check that the index covers the block (depth-limit test).
//! 3. Convert the block to its twig pattern, translate to a matrix, and
//!    compute `(λ_max, λ_min)`.
//! 4. Range-scan the B-tree for entries whose stored range *contains* the
//!    query range (and whose root label matches when the probe is
//!    anchored).
//! 5. Refine every candidate with the configured operator, the leading
//!    `//` rewritten to `/` (candidates are rooted exactly at the anchor).

use std::fmt;
use std::time::{Duration, Instant};

use fix_bisim::{query_pattern_with_values, UnitInfo};
use fix_exec::{CancelToken, Refiner};
use fix_obs::{QueryTrace, Stage};
use fix_spectral::Features;
use fix_xml::NodeId;
use fix_xpath::{decompose, parse_path, Axis, PathExpr, TwigError, TwigQuery, XPathError};

use crate::builder::FixIndex;
use crate::collection::{Collection, DocId};
use crate::error::FixError;
use crate::key::{EntryPtr, IndexKey};
use crate::metrics::Metrics;
use crate::options::RefineOp;

/// Cancellation context for the fallible query pipeline: the shared
/// [`CancelToken`] plus the query's start instant, so a tripped token
/// maps to [`FixError::DeadlineExceeded`] carrying the elapsed wall
/// time. Explicit cancellation (a caller tripping the token by hand)
/// reports through the same error.
#[derive(Debug)]
pub(crate) struct QueryCtl {
    token: CancelToken,
    started: Instant,
}

impl QueryCtl {
    /// A control block that never trips on its own (no deadline); its
    /// checkpoints cost one relaxed atomic load.
    pub(crate) fn unbounded() -> Self {
        Self::new(CancelToken::new())
    }

    /// Wraps an existing token; the elapsed clock starts now.
    pub(crate) fn new(token: CancelToken) -> Self {
        Self {
            token,
            started: Instant::now(),
        }
    }

    /// A control block whose token trips `timeout` from now.
    pub(crate) fn with_timeout(timeout: Duration) -> Self {
        Self::new(CancelToken::with_deadline(
            Instant::now().checked_add(timeout),
        ))
    }

    /// A per-worker clone: same shared token, fresh poll counter, same
    /// start instant (the deadline is a property of the query, not the
    /// worker).
    pub(crate) fn worker(&self) -> Self {
        Self {
            token: self.token.clone(),
            started: self.started,
        }
    }

    /// The loop-boundary poll: `Err(DeadlineExceeded)` once the token has
    /// tripped.
    pub(crate) fn checkpoint(&mut self) -> Result<(), FixError> {
        if self.token.should_stop() {
            Err(FixError::DeadlineExceeded {
                elapsed: self.started.elapsed(),
            })
        } else {
            Ok(())
        }
    }

    /// The query-start check: one unconditional clock read, so an
    /// already-expired deadline trips before any work — the loop polls
    /// above only consult the clock every `CHECK_INTERVAL` calls and
    /// could outrun a short scan otherwise.
    pub(crate) fn checkpoint_now(&self) -> Result<(), FixError> {
        if self.token.is_cancelled() {
            Err(FixError::DeadlineExceeded {
                elapsed: self.started.elapsed(),
            })
        } else {
            Ok(())
        }
    }
}

/// Why a query could not be processed through the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query string failed to parse.
    Parse(XPathError),
    /// The index's depth limit does not cover the query's top twig block —
    /// the optimizer must fall back to an unindexed plan (Section 4.4).
    NotCovered {
        /// Depth of the query's top block.
        query_depth: usize,
        /// The index's depth limit.
        depth_limit: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::NotCovered {
                query_depth,
                depth_limit,
            } => write!(
                f,
                "query depth {query_depth} exceeds the index depth limit {depth_limit}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<XPathError> for QueryError {
    fn from(e: XPathError) -> Self {
        QueryError::Parse(e)
    }
}

/// The outcome of one indexed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Final results: `(document, output node)` pairs in document order.
    pub results: Vec<(DocId, NodeId)>,
    /// The Section 6.2 counters for this query.
    pub metrics: Metrics,
}

impl QueryOutcome {
    /// Serializes each result's subtree back to XML (the
    /// "return the matched elements" consumer API).
    pub fn results_xml(&self, coll: &Collection) -> Vec<String> {
        self.results
            .iter()
            .map(|&(doc, node)| {
                let d = coll.doc(doc);
                let mut out = String::new();
                fix_xml::serialize::subtree_to_xml(d, &coll.labels, node, &mut out);
                out
            })
            .collect()
    }

    /// The concatenated text content of each result.
    pub fn results_text(&self, coll: &Collection) -> Vec<String> {
        self.results
            .iter()
            .map(|&(doc, node)| coll.doc(doc).text_content(node))
            .collect()
    }
}

/// One scan candidate: a decoded entry key, the B-tree (or delta-run)
/// value it maps to, and which of the two sorted sources produced it —
/// refinement resolves delta values against the delta's copy store for
/// clustered indexes, and the observability layer counts the delta's
/// share of the scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The decoded index entry key.
    pub key: IndexKey,
    /// The value stored under the key.
    pub value: u64,
    /// `true` when the entry came from the delta run.
    pub delta: bool,
}

/// A compiled query: the normalized path expression, its twig-block
/// decomposition, and the precomputed pruning features — steps 1–3 of
/// Algorithm 2, everything that depends only on the query string and the
/// index configuration. Plans are immutable and cheap to share
/// (`QuerySession`s keep them in an `Arc`-valued LRU cache); executing one
/// is [`FixIndex::scan_plan`] + refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The normalized path expression (see `fix_xpath::normalize`).
    pub(crate) path: PathExpr,
    /// Twig blocks from `fix_xpath::decompose`; the top block is first.
    pub(crate) blocks: Vec<PathExpr>,
    /// Pruning features of the top block; `None` when the block provably
    /// matches nothing (unknown label / edge pair / value bucket).
    pub(crate) top: Option<Features>,
    /// Features of the remaining blocks, aligned with `blocks[1..]`.
    /// Populated only in collection mode, where rest blocks prune
    /// (Section 5); empty otherwise.
    pub(crate) rest: Vec<Option<Features>>,
}

impl QueryPlan {
    /// The normalized path this plan evaluates.
    pub fn path(&self) -> &PathExpr {
        &self.path
    }

    /// The canonical spelling of the query — the string plans are cached
    /// under.
    pub fn normalized(&self) -> String {
        self.path.to_string()
    }

    /// Pruning features of the top twig block (`None` = provably empty).
    pub fn features(&self) -> Option<&Features> {
        self.top.as_ref()
    }
}

/// Wall-clock timings of one plan compilation, split along the stage
/// boundary the trace reports: `compile` (twig decomposition) versus
/// `eigen` (pruning-feature computation).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PlanTiming {
    pub(crate) compile: Duration,
    pub(crate) eigen: Duration,
    /// Twig blocks the query decomposed into.
    pub(crate) blocks: u64,
}

/// Wall-clock timings of one refinement run.
#[derive(Debug, Clone, Default)]
pub(crate) struct RefineTiming {
    pub(crate) wall: Duration,
    /// Per-worker wall times in chunk order; empty for the sequential
    /// path.
    pub(crate) workers: Vec<Duration>,
}

impl FixIndex {
    /// Parses and runs a query (see [`FixIndex::query_path`]).
    pub fn query(&self, coll: &Collection, query: &str) -> Result<QueryOutcome, QueryError> {
        let path = parse_path(query)?;
        self.query_path(coll, &path)
    }

    /// Runs a query with full stage tracing: every pipeline stage's wall
    /// time and item counts are captured in a [`QueryTrace`] alongside the
    /// ordinary [`QueryOutcome`]. The outcome is byte-identical to
    /// [`FixIndex::query`]; refinement fans across `threads` workers
    /// (`≤ 1` = sequential). There is no plan cache at this level, so the
    /// trace never contains a [`Stage::CacheProbe`] record — the session
    /// layer adds that.
    pub fn query_traced(
        &self,
        coll: &Collection,
        query: &str,
        threads: usize,
    ) -> Result<(QueryOutcome, QueryTrace), QueryError> {
        let t0 = Instant::now();
        let mut trace = QueryTrace::new(query);
        let parse_start = Instant::now();
        let path = parse_path(query)?;
        let normalized = fix_xpath::normalize(&path);
        trace.record(Stage::Parse, parse_start.elapsed());
        let (plan, pt) = self.plan_normalized_timed(coll, normalized)?;
        trace.record(Stage::Compile, pt.compile).items = Some(pt.blocks);
        trace.record(Stage::Eigen, pt.eigen);
        let scan_start = Instant::now();
        let candidates = self.scan_plan(&plan);
        trace.record(Stage::Scan, scan_start.elapsed()).items = Some(candidates.len() as u64);
        let (outcome, rt) = self.refine_with_threads_timed(coll, &plan.path, candidates, threads);
        let r = trace.record(Stage::Refine, rt.wall);
        r.items = Some(outcome.results.len() as u64);
        r.workers = rt.workers;
        trace.total = t0.elapsed();
        Ok((outcome, trace))
    }

    /// Runs a parsed path expression through prune + refine. The
    /// expression is normalized first (duplicate/implied predicates
    /// dropped; see `fix_xpath::normalize`) — a cheap logical rewrite that
    /// also canonicalizes the feature computation.
    pub fn query_path(
        &self,
        coll: &Collection,
        path: &PathExpr,
    ) -> Result<QueryOutcome, QueryError> {
        let plan = self.plan_path(coll, path)?;
        let candidates = self.scan_plan(&plan);
        Ok(self.refine(coll, &plan.path, candidates))
    }

    /// Compiles a query string into a reusable [`QueryPlan`] (steps 1–3 of
    /// Algorithm 2: parse, decompose, compute features). (Named `compile`
    /// rather than `plan` — [`FixIndex::plan`](crate::estimate) is the
    /// histogram-based index-vs-scan decision.)
    pub fn compile(&self, coll: &Collection, query: &str) -> Result<QueryPlan, QueryError> {
        let path = parse_path(query)?;
        self.plan_path(coll, &path)
    }

    /// Compiles a parsed path expression into a [`QueryPlan`].
    pub fn plan_path(&self, coll: &Collection, path: &PathExpr) -> Result<QueryPlan, QueryError> {
        self.plan_normalized(coll, fix_xpath::normalize(path))
    }

    /// Plan construction for an already-normalized path (callers that
    /// normalized up front to derive a cache key).
    pub(crate) fn plan_normalized(
        &self,
        coll: &Collection,
        path: PathExpr,
    ) -> Result<QueryPlan, QueryError> {
        self.plan_normalized_timed(coll, path).map(|(p, _)| p)
    }

    /// [`FixIndex::plan_normalized`] with per-stage wall clocks: the twig
    /// decomposition (the trace's `compile` stage) is timed separately
    /// from the eigenvalue work (`eigen`).
    pub(crate) fn plan_normalized_timed(
        &self,
        coll: &Collection,
        path: PathExpr,
    ) -> Result<(QueryPlan, PlanTiming), QueryError> {
        let compile_start = Instant::now();
        let blocks = decompose(&path);
        let compile = compile_start.elapsed();
        let eigen_start = Instant::now();
        // Pruning features of the top block.
        let top = self.block_features(coll, &blocks[0])?;
        // In collection mode the remaining blocks prune too: the document
        // must contain every block (Section 5). With a positive depth
        // limit they give no pruning power (only the top block is anchored
        // at the entry root), so skip the eigenwork. Rest blocks cannot
        // raise `NotCovered` (the depth test only applies when
        // `depth_limit > 0`), so eager computation is outcome-identical to
        // the old lazy path.
        let rest = if self.opts.depth_limit == 0 && blocks.len() > 1 && top.is_some() {
            blocks[1..]
                .iter()
                .map(|b| self.block_features(coll, b))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        let timing = PlanTiming {
            compile,
            eigen: eigen_start.elapsed(),
            blocks: blocks.len() as u64,
        };
        Ok((
            QueryPlan {
                path,
                blocks,
                top,
                rest,
            },
            timing,
        ))
    }

    /// Step 4 of Algorithm 2: range-scan the B-tree — and, after inserts,
    /// every live delta run (frozen tiers plus the active tail) — with a
    /// compiled plan's features. Each source is scanned in key order and
    /// the streams are k-way merged on the raw key encoding (entry
    /// sequence numbers make keys unique), so the returned [`Candidate`]
    /// stream is byte-identical to the single scan a just-compacted or
    /// freshly rebuilt index would produce, however the delta is tiered.
    pub fn scan_plan(&self, plan: &QueryPlan) -> Vec<Candidate> {
        self.try_scan_plan(plan, &mut QueryCtl::unbounded())
            .unwrap_or_else(|e| panic!("invariant: index scan must succeed on this path: {e}"))
    }

    /// [`FixIndex::scan_plan`] with structured failure and cooperative
    /// cancellation: B-tree page failures (I/O errors, CRC mismatches,
    /// quarantined pages) surface as [`FixError`] naming the `"btree"`
    /// section, and the scan aborts with [`FixError::DeadlineExceeded`]
    /// at the next item boundary once `ctl`'s token trips.
    pub(crate) fn try_scan_plan(
        &self,
        plan: &QueryPlan,
        ctl: &mut QueryCtl,
    ) -> Result<Vec<Candidate>, FixError> {
        let Some(top_feat) = &plan.top else {
            return Ok(Vec::new());
        };
        // Anchored probes (every entry is rooted at a potential anchor):
        // large-document mode always; collection mode when the query is
        // rooted at the document root. Un-anchored probes scan the whole
        // tree: the pattern can root anywhere inside a document, so only
        // the eigenvalue range prunes (`check_root = anchored` below).
        let anchored = self.opts.depth_limit > 0 || plan.blocks[0].steps[0].axis == Axis::Child;
        let storage = |e| FixError::from_storage("btree", e);
        let mut scan = if anchored {
            self.btree
                .try_range(
                    &IndexKey::scan_start(top_feat),
                    Some(&IndexKey::scan_end(top_feat)),
                )
                .map_err(storage)?
        } else {
            self.btree.try_iter().map_err(storage)?
        };
        let mut base: Vec<Candidate> = Vec::new();
        loop {
            ctl.checkpoint()?;
            let Some((k, v)) = scan.next() else { break };
            let c = Candidate {
                key: IndexKey::decode(&k),
                value: v,
                delta: false,
            };
            if self.entry_contains(&c.key, top_feat, anchored) {
                base.push(c);
            }
        }
        // A mid-scan leaf-chain failure parks on the iterator instead of
        // panicking; surface it here.
        if let Some(e) = scan.take_error() {
            return Err(storage(e));
        }
        drop(scan);
        let mut cands = if self.delta.is_empty() {
            base
        } else {
            let t0 = Instant::now();
            let map = |(k, v): (&[u8], u64)| Candidate {
                key: IndexKey::decode(k),
                value: v,
                delta: true,
            };
            // One candidate source per live run, base first: the k-way
            // merge tie-breaks toward earlier sources, preserving the old
            // base-before-delta order (ties cannot occur — keys are
            // unique — but the guarantee is kept total).
            let mut scanned = 0u64;
            let mut sources: Vec<Vec<Candidate>> = Vec::with_capacity(1 + self.delta.runs().len());
            sources.push(base);
            for run in self.delta.runs() {
                // Delta runs are in-memory — they cannot fail, but a slow
                // merged scan should still honor the deadline per run.
                ctl.checkpoint()?;
                let side: Vec<Candidate> = if anchored {
                    run.range(
                        &IndexKey::scan_start(top_feat),
                        Some(&IndexKey::scan_end(top_feat)),
                    )
                    .map(map)
                    .filter(|c| self.entry_contains(&c.key, top_feat, true))
                    .collect()
                } else {
                    run.iter()
                        .map(map)
                        .filter(|c| self.entry_contains(&c.key, top_feat, false))
                        .collect()
                };
                scanned += side.len() as u64;
                sources.push(side);
            }
            self.delta.note_scan(
                scanned,
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            fix_exec::merge_k_sorted(sources, |c: &Candidate| c.key.encode())
        };
        // Tombstoned documents never appear as candidates. (Clustered
        // values point into the copy stores; their document is resolved —
        // and filtered — during refinement instead.)
        if !self.removed.is_empty() && self.clustered.is_none() {
            cands.retain(|c| !self.removed.contains(&EntryPtr::from_u64(c.value).doc));
        }
        for bf in &plan.rest {
            if cands.is_empty() {
                break;
            }
            let Some(bf) = bf else {
                // A provably-empty rest block empties the whole conjunction.
                return Ok(Vec::new());
            };
            cands.retain(|c| self.entry_contains(&c.key, bf, false));
        }
        Ok(cands)
    }

    /// The pruning phase alone: [`Candidate`]s in key order. Exposed
    /// separately so the experiment harness can measure pruning power
    /// without paying for refinement. Equivalent to
    /// [`FixIndex::plan_path`] followed by [`FixIndex::scan_plan`].
    pub fn candidates(
        &self,
        coll: &Collection,
        path: &PathExpr,
    ) -> Result<Vec<Candidate>, QueryError> {
        Ok(self.scan_plan(&self.plan_path(coll, path)?))
    }

    /// Computes pruning features for one twig block; `Ok(None)` when the
    /// block provably matches nothing (unknown label, unknown edge pair,
    /// unknown value bucket).
    pub(crate) fn block_features(
        &self,
        coll: &Collection,
        block: &PathExpr,
    ) -> Result<Option<Features>, QueryError> {
        let twig = match TwigQuery::from_path(block, &coll.labels) {
            Ok(t) => t,
            Err(TwigError::UnknownLabel(_)) => return Ok(None),
            Err(TwigError::NotATwig) => unreachable!("decompose produces twig blocks"),
        };
        // If the index has no value labels, prune with the structural
        // skeleton; refinement checks the values.
        let twig = if twig.has_values() && self.hasher.is_none() {
            twig.strip_values()
        } else {
            twig
        };
        if self.opts.depth_limit > 0 && twig.depth() > self.opts.depth_limit {
            return Err(QueryError::NotCovered {
                query_depth: twig.depth(),
                depth_limit: self.opts.depth_limit,
            });
        }
        let (pattern, pinfo): (_, UnitInfo) = if twig.has_values() {
            let h = self.hasher.as_ref().expect("values imply a hasher");
            // All value buckets must exist, otherwise no indexed document
            // contains such a value.
            for node in &twig.nodes {
                if let Some(v) = &node.value {
                    if h.label(v, &coll.labels).is_none() {
                        return Ok(None);
                    }
                }
            }
            query_pattern_with_values(&twig, |v| h.label(v, &coll.labels).expect("checked above"))
        } else {
            fix_bisim::query_pattern(&twig)
        };
        let mut feat = match self
            .opts
            .extractor
            .extract_query(&pattern, pinfo.root, &self.encoder)
        {
            Some(f) => f,
            None => return Ok(None),
        };
        // Non-injective guard (SymmetricNorm mode only; SkewSpectral stays
        // paper-faithful). A query whose *tree* repeats a label admits
        // matches that are non-injective (two query nodes on one document
        // node) or non-homomorphic on the minimized pattern (two identical
        // query leaves collapse into one shared vertex, yet match document
        // nodes with different subtrees — a counterexample to the paper's
        // Theorem 2; see DESIGN.md §2). Either way spectral monotonicity
        // fails. The widest range that stays sound is the query's maximum
        // single edge weight: every entry matching the query contains that
        // edge, and a single non-negative edge already forces
        // λ_max ≥ weight (Perron). The duplicate test must run on the twig
        // *tree*, pre-collapse — the collapsed pattern can look
        // duplicate-free exactly in the failing cases.
        if self.opts.extractor.mode == fix_spectral::FeatureMode::SymmetricNorm {
            let mut seen = std::collections::HashSet::new();
            let mut dup = false;
            for node in &twig.nodes {
                if !seen.insert(node.label) {
                    dup = true;
                }
                if let (Some(v), Some(h)) = (&node.value, &self.hasher) {
                    if let Some(l) = h.label(v, &coll.labels) {
                        if !seen.insert(l) {
                            dup = true;
                        }
                    }
                }
            }
            if dup {
                let mut max_w = 0.0f64;
                for v in pattern.iter() {
                    for &c in pattern.children(v) {
                        let w = self
                            .encoder
                            .lookup(pattern.label(v), pattern.label(c))
                            .unwrap_or(0.0);
                        max_w = max_w.max(w);
                    }
                }
                feat.lmax = max_w;
                feat.lmin = -max_w;
                feat.sigma2 = 0.0;
                // `feat.bloom` stays: edge fingerprints are sound even for
                // non-injective matches (labeled edges are preserved by any
                // match).
            }
        }
        Ok(Some(feat))
    }

    /// Range-containment test against a stored entry key.
    fn entry_contains(&self, entry: &IndexKey, query: &Features, check_root: bool) -> bool {
        if check_root && entry.root != query.root {
            return false;
        }
        let eps = |v: f64| 1e-9 * (1.0 + v.abs());
        let base = query.lmax <= entry.lmax + eps(entry.lmax)
            && query.lmin >= entry.lmin - eps(entry.lmin);
        if !base {
            return false;
        }
        if self.opts.extended_features && query.sigma2 > entry.sigma2 + eps(entry.sigma2) {
            return false;
        }
        if self.opts.edge_bloom && query.bloom & !entry.bloom != 0 {
            return false;
        }
        true
    }

    /// The refinement phase: validate candidates and assemble results.
    pub fn refine(
        &self,
        coll: &Collection,
        path: &PathExpr,
        candidates: Vec<Candidate>,
    ) -> QueryOutcome {
        self.refine_with_threads(coll, path, candidates, 1)
    }

    /// Refinement fanned across `threads` workers. Candidates are split
    /// into contiguous chunks (preserving key order within each), refined
    /// concurrently, and the per-chunk results concatenated in chunk order
    /// before the final sort + dedup — the same multiset the sequential
    /// loop produces, so the [`QueryOutcome`] is byte-identical at every
    /// thread count. `threads ≤ 1` runs the plain sequential loop.
    pub fn refine_with_threads(
        &self,
        coll: &Collection,
        path: &PathExpr,
        candidates: Vec<Candidate>,
        threads: usize,
    ) -> QueryOutcome {
        self.refine_with_threads_timed(coll, path, candidates, threads)
            .0
    }

    /// [`FixIndex::refine_with_threads`] plus wall clocks: the stage's
    /// total wall time and (for the parallel path) each worker's wall
    /// time, collected in chunk order so the aggregation is deterministic.
    pub(crate) fn refine_with_threads_timed(
        &self,
        coll: &Collection,
        path: &PathExpr,
        candidates: Vec<Candidate>,
        threads: usize,
    ) -> (QueryOutcome, RefineTiming) {
        self.try_refine_with_threads_timed(coll, path, candidates, threads, &QueryCtl::unbounded())
            .unwrap_or_else(|e| panic!("invariant: refinement must succeed on this path: {e}"))
    }

    /// [`FixIndex::refine_with_threads_timed`] with structured failure and
    /// cooperative cancellation. Storage failures resolving candidates
    /// surface as [`FixError`] naming the section at fault (`"clustered"`
    /// for copy-heap fetches, `"documents"` for primary reads); a tripped
    /// deadline aborts at the next candidate boundary. On the parallel
    /// path the first failing chunk *in chunk order* wins, so the reported
    /// error is deterministic across thread scheduling.
    pub(crate) fn try_refine_with_threads_timed(
        &self,
        coll: &Collection,
        path: &PathExpr,
        candidates: Vec<Candidate>,
        threads: usize,
        ctl: &QueryCtl,
    ) -> Result<(QueryOutcome, RefineTiming), FixError> {
        let start = Instant::now();
        let cdt = candidates.len() as u64;
        let delta_cdt = candidates.iter().filter(|c| c.delta).count() as u64;
        let refiner = Refiner::new(
            &coll.labels,
            path,
            self.opts.depth_limit,
            self.opts.refine == RefineOp::Twig,
        );
        let threads = threads.max(1).min(candidates.len().max(1));
        // One worker's output: its matches, producing count, and wall time.
        type ChunkPart = (Vec<(DocId, NodeId)>, u64, Duration);
        let (mut results, producing, workers) = if threads <= 1 {
            let mut wctl = ctl.worker();
            let (r, p) = self.try_refine_chunk(coll, &refiner, &candidates, &mut wctl)?;
            (r, p, Vec::new())
        } else {
            let chunk = candidates.len().div_ceil(threads);
            let parts: Vec<Result<ChunkPart, FixError>> = std::thread::scope(|s| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|part| {
                        let refiner = &refiner;
                        let mut wctl = ctl.worker();
                        s.spawn(move || {
                            let w0 = Instant::now();
                            self.try_refine_chunk(coll, refiner, part, &mut wctl)
                                .map(|(r, p)| (r, p, w0.elapsed()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("refinement worker panicked"))
                    .collect()
            });
            let mut results = Vec::new();
            let mut producing = 0u64;
            let mut workers = Vec::with_capacity(parts.len());
            for part in parts {
                let (r, p, w) = part?;
                results.extend(r);
                producing += p;
                workers.push(w);
            }
            (results, producing, workers)
        };
        results.sort_unstable();
        results.dedup();
        let outcome = QueryOutcome {
            results,
            metrics: Metrics {
                entries: self.entry_count(),
                candidates: cdt,
                delta_candidates: delta_cdt,
                producing,
            },
        };
        Ok((
            outcome,
            RefineTiming {
                wall: start.elapsed(),
                workers,
            },
        ))
    }

    /// Refines one contiguous run of candidates. `&self`-only — safe to
    /// call from any number of worker threads at once. Checks `ctl` at
    /// every candidate boundary.
    fn try_refine_chunk(
        &self,
        coll: &Collection,
        refiner: &Refiner<'_>,
        candidates: &[Candidate],
        ctl: &mut QueryCtl,
    ) -> Result<(Vec<(DocId, NodeId)>, u64), FixError> {
        let mut producing = 0u64;
        let mut results: Vec<(DocId, NodeId)> = Vec::new();
        for &Candidate { value, delta, .. } in candidates {
            ctl.checkpoint()?;
            let ptr = if self.clustered.is_some() {
                // Clustered: fetch the copy (sequential I/O — candidates
                // arrive in key order) and recover the pointer. Delta
                // values resolve against the delta's in-memory copy store
                // instead of the base heap, so only the base fetch can
                // fail.
                if delta {
                    self.delta.fetch(value).0
                } else {
                    self.try_clustered_fetch(value)?.0
                }
            } else {
                EntryPtr::from_u64(value)
            };
            if self.removed.contains(&ptr.doc) {
                continue;
            }
            let doc = coll.try_doc(ptr.doc)?;
            // Charge the primary-storage read for this candidate: the
            // whole (small) document in collection mode, the pattern
            // instance's subtree in large-document mode. The clustered
            // variant already paid for its copy instead.
            if self.clustered.is_none() {
                if self.opts.depth_limit == 0 {
                    coll.touch_document(ptr.doc);
                } else {
                    coll.touch_subtree(ptr.doc, NodeId(ptr.node));
                }
            }
            let rs = refiner.matches_at(doc, NodeId(ptr.node));
            if !rs.is_empty() {
                producing += 1;
                results.extend(rs.into_iter().map(|n| (ptr.doc, n)));
            }
        }
        Ok((results, producing))
    }

    /// Parses a query and returns a lazy iterator over its matches (see
    /// [`QueryHits`]).
    pub fn query_iter<'a>(
        &'a self,
        coll: &'a Collection,
        query: &str,
    ) -> Result<QueryHits<'a>, QueryError> {
        let plan = self.compile(coll, query)?;
        Ok(self.hits(coll, &plan))
    }

    /// Executes a compiled plan as a lazy iterator. Pruning (the B-tree
    /// scan and, for the clustered variant, the copy-heap fetches) happens
    /// up front; refinement is deferred and paid one *document* at a time
    /// as the iterator is advanced.
    pub fn hits<'a>(&'a self, coll: &'a Collection, plan: &QueryPlan) -> QueryHits<'a> {
        let candidates = self.scan_plan(plan);
        let cdt = candidates.len() as u64;
        let delta_cdt = candidates.iter().filter(|c| c.delta).count() as u64;
        // Resolve pointers up front, in key order, so the clustered copy
        // heap still sees sequential I/O.
        let mut ptrs: Vec<EntryPtr> = Vec::with_capacity(candidates.len());
        for Candidate { value, delta, .. } in candidates {
            let ptr = if self.clustered.is_some() {
                if delta {
                    self.delta.fetch(value).0
                } else {
                    self.clustered_fetch(value).0
                }
            } else {
                EntryPtr::from_u64(value)
            };
            if !self.removed.contains(&ptr.doc) {
                ptrs.push(ptr);
            }
        }
        // Group candidates by document, ascending: the concatenation of
        // each document's sorted, deduplicated output then equals the
        // globally sorted result set the eager path produces.
        ptrs.sort_unstable();
        QueryHits {
            index: self,
            coll,
            refiner: Refiner::new(
                &coll.labels,
                &plan.path,
                self.opts.depth_limit,
                self.opts.refine == RefineOp::Twig,
            ),
            pending: ptrs.into_iter(),
            lookahead: None,
            buf: Vec::new().into_iter(),
            metrics: Metrics {
                entries: self.entry_count(),
                candidates: cdt,
                delta_candidates: delta_cdt,
                producing: 0,
            },
        }
    }
}

/// A lazy stream of query matches, yielded in document order — the exact
/// sequence [`QueryOutcome::results`] would hold, without materializing it
/// up front. Refinement runs one document group at a time: consumers that
/// stop early (first match, top-N) skip the evaluation work for every
/// remaining candidate document.
pub struct QueryHits<'a> {
    index: &'a FixIndex,
    coll: &'a Collection,
    refiner: Refiner<'a>,
    /// Resolved candidate pointers, sorted by `(document, node)`.
    pending: std::vec::IntoIter<EntryPtr>,
    /// First pointer of the next document group, peeked off `pending`.
    lookahead: Option<EntryPtr>,
    /// The current document's matches, drained front to back.
    buf: std::vec::IntoIter<(DocId, NodeId)>,
    metrics: Metrics,
}

impl QueryHits<'_> {
    /// The Section 6.2 counters. `entries` and `candidates` are exact from
    /// construction; `producing` counts only the candidates refined so
    /// far, so it is complete once the iterator is exhausted.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drains the remaining matches into an eager [`QueryOutcome`].
    pub fn into_outcome(mut self) -> QueryOutcome {
        let mut results: Vec<(DocId, NodeId)> = Vec::new();
        for hit in &mut self {
            results.push(hit);
        }
        QueryOutcome {
            results,
            metrics: self.metrics,
        }
    }

    /// Refines the next document's candidate group into `buf`; `false`
    /// when no candidates remain.
    fn refine_next_doc(&mut self) -> bool {
        let Some(first) = self.lookahead.take().or_else(|| self.pending.next()) else {
            return false;
        };
        let doc_id = first.doc;
        let mut group = vec![first];
        for ptr in self.pending.by_ref() {
            if ptr.doc != doc_id {
                self.lookahead = Some(ptr);
                break;
            }
            group.push(ptr);
        }
        let doc = self.coll.doc(doc_id);
        let mut nodes: Vec<NodeId> = Vec::new();
        for ptr in group {
            // Same primary-storage charging as the eager path (clustered
            // candidates paid for their copies at construction).
            if self.index.clustered.is_none() {
                if self.index.opts.depth_limit == 0 {
                    self.coll.touch_document(ptr.doc);
                } else {
                    self.coll.touch_subtree(ptr.doc, NodeId(ptr.node));
                }
            }
            let rs = self.refiner.matches_at(doc, NodeId(ptr.node));
            if !rs.is_empty() {
                self.metrics.producing += 1;
                nodes.extend(rs);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        self.buf = nodes
            .into_iter()
            .map(|n| (doc_id, n))
            .collect::<Vec<_>>()
            .into_iter();
        true
    }
}

impl Iterator for QueryHits<'_> {
    type Item = (DocId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(hit) = self.buf.next() {
                return Some(hit);
            }
            if !self.refine_next_doc() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FixOptions;

    fn bib_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<bib><article><author><email/></author><title>t1</title><ee/></article></bib>")
            .unwrap();
        c.add_xml("<bib><book><author><phone/></author><title>t2</title></book></bib>")
            .unwrap();
        c.add_xml(
            "<bib><article><author><phone/><email/></author><title>t3</title></article></bib>",
        )
        .unwrap();
        c
    }

    #[test]
    fn collection_query_end_to_end() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//article[author]/ee").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
        assert_eq!(out.metrics.entries, 3);
        assert!(out.metrics.candidates >= 1);
        assert_eq!(out.metrics.producing, 1);
    }

    #[test]
    fn rooted_collection_query_uses_root_partition() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "/bib/book/author/phone").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(1));
    }

    #[test]
    fn large_document_query_anchors_per_element() {
        let mut c = Collection::new();
        c.add_xml("<s><s><np/><s><np/><vp/></s></s><vp/><empty><s><np/></s></empty></s>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(4));
        let out = idx.query(&c, "//s[np][vp]").unwrap();
        assert_eq!(out.results.len(), 1);
        let out2 = idx.query(&c, "//empty/s/np").unwrap();
        assert_eq!(out2.results.len(), 1);
        // Results agree with the navigational baseline.
        let p = parse_path("//s/np").unwrap();
        let base = fix_exec::eval_path(c.doc(DocId(0)), &c.labels, &p);
        let via_index = idx.query(&c, "//s/np").unwrap();
        assert_eq!(via_index.results.len(), base.len());
    }

    #[test]
    fn not_covered_query_is_rejected() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(2));
        let err = idx.query(&c, "//bib/article/author/email").unwrap_err();
        assert!(matches!(
            err,
            QueryError::NotCovered {
                query_depth: 4,
                depth_limit: 2
            }
        ));
    }

    #[test]
    fn unknown_labels_yield_empty_without_error() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//nonexistent/label").unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.metrics.candidates, 0);
    }

    #[test]
    fn interior_descendant_queries_decompose() {
        let mut c = Collection::new();
        c.add_xml(
            "<site><open_auction><seller/><annotation><description><price/></description></annotation></open_auction></site>",
        )
        .unwrap();
        c.add_xml("<site><closed_auction><price/></closed_auction></site>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//open_auction//price").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
    }

    #[test]
    fn clustered_and_unclustered_agree() {
        let mut c1 = bib_collection();
        let u = FixIndex::build(&mut c1, FixOptions::collection());
        let mut c2 = bib_collection();
        let cl = FixIndex::build(&mut c2, FixOptions::collection().clustered());
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "//book/title",
            "/bib/article/author",
        ] {
            let a = u.query(&c1, q).unwrap();
            let b = cl.query(&c2, q).unwrap();
            assert_eq!(a.results, b.results, "disagreement on {q}");
            assert_eq!(a.metrics, b.metrics, "metric disagreement on {q}");
        }
    }

    #[test]
    fn parallel_refinement_matches_sequential() {
        let mut c1 = bib_collection();
        let u = FixIndex::build(&mut c1, FixOptions::collection());
        let mut c2 = bib_collection();
        let cl = FixIndex::build(&mut c2, FixOptions::collection().clustered());
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "/bib/article/author",
            "//book/title",
            "//nonexistent/label",
        ] {
            for (idx, c) in [(&u, &c1), (&cl, &c2)] {
                let seq = idx.query(c, q).unwrap();
                let plan = idx.compile(c, q).unwrap();
                for t in [2, 3, 8] {
                    let par = idx.refine_with_threads(c, plan.path(), idx.scan_plan(&plan), t);
                    assert_eq!(seq, par, "thread count {t} diverged on {q}");
                }
            }
        }
    }

    #[test]
    fn query_iter_streams_the_eager_results() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "//book/title",
            "//nonexistent/label",
        ] {
            let eager = idx.query(&c, q).unwrap();
            let lazy: Vec<_> = idx.query_iter(&c, q).unwrap().collect();
            assert_eq!(eager.results, lazy, "stream diverged on {q}");
            let outcome = idx.query_iter(&c, q).unwrap().into_outcome();
            assert_eq!(eager, outcome, "outcome diverged on {q}");
        }
    }

    #[test]
    fn query_iter_streams_large_document_mode() {
        let mut c = Collection::new();
        c.add_xml("<s><s><np/><s><np/><vp/></s></s><vp/><empty><s><np/></s></empty></s>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(4));
        for q in ["//s[np][vp]", "//s/np", "//empty/s/np"] {
            let eager = idx.query(&c, q).unwrap();
            let outcome = idx.query_iter(&c, q).unwrap().into_outcome();
            assert_eq!(eager, outcome, "outcome diverged on {q}");
        }
    }

    #[test]
    fn traced_query_matches_untraced_and_records_all_stages() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        for q in ["//article[author]/ee", "//nonexistent/label"] {
            let plain = idx.query(&c, q).unwrap();
            let (traced, trace) = idx.query_traced(&c, q, 2).unwrap();
            assert_eq!(plain, traced, "traced outcome diverged on {q}");
            for s in [
                Stage::Parse,
                Stage::Compile,
                Stage::Eigen,
                Stage::Scan,
                Stage::Refine,
            ] {
                assert!(trace.stage(s).is_some(), "missing stage {s} on {q}");
            }
            // No plan cache at the index level — no probe record.
            assert!(trace.stage(Stage::CacheProbe).is_none());
            assert_eq!(
                trace.stage(Stage::Scan).unwrap().items,
                Some(traced.metrics.candidates),
                "scan items must equal the candidate count on {q}"
            );
            assert_eq!(
                trace.stage(Stage::Refine).unwrap().items,
                Some(traced.results.len() as u64)
            );
            assert!(trace.total >= trace.stage(Stage::Refine).unwrap().wall);
        }
    }

    #[test]
    fn plans_compile_once_and_rerun() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let plan = idx.compile(&c, "//article[author]/ee").unwrap();
        assert!(plan.features().is_some());
        // The canonical spelling re-parses to the same plan (cache keys are
        // stable).
        let replanned = idx.compile(&c, &plan.normalized()).unwrap();
        assert_eq!(plan, replanned);
        let a = idx.refine(&c, plan.path(), idx.scan_plan(&plan));
        let b = idx.query(&c, "//article[author]/ee").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn value_queries_prune_through_the_value_index() {
        let mut c = Collection::new();
        c.add_xml("<dblp><proceedings><publisher>Springer</publisher><title>a</title></proceedings></dblp>").unwrap();
        c.add_xml(
            "<dblp><proceedings><publisher>ACM</publisher><title>b</title></proceedings></dblp>",
        )
        .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(3).with_values(64));
        let out = idx
            .query(&c, r#"//proceedings[publisher="Springer"][title]"#)
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
        // Pruning is containment-based, so the ACM entry may or may not
        // survive (its wider structural range can cover the query range);
        // the guarantee is only "no false negatives".
        assert!(out.metrics.candidates >= 1);
        assert_eq!(out.metrics.producing, 1);
        // A value that was never indexed short-circuits to empty.
        let out2 = idx
            .query(&c, r#"//proceedings[publisher="Elsevier"]"#)
            .unwrap();
        assert!(out2.results.is_empty());
    }

    #[test]
    fn structural_index_still_answers_value_queries() {
        let mut c = Collection::new();
        c.add_xml("<dblp><inproceedings><year>1998</year><title>x</title></inproceedings></dblp>")
            .unwrap();
        c.add_xml("<dblp><inproceedings><year>1999</year><title>y</title></inproceedings></dblp>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(3));
        let out = idx
            .query(&c, r#"//inproceedings[year="1998"]/title"#)
            .unwrap();
        assert_eq!(out.results.len(), 1);
        // Both inproceedings are candidates (structure identical) — the
        // value filter happens in refinement.
        assert_eq!(out.metrics.candidates, 2);
        assert_eq!(out.metrics.producing, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        assert!(matches!(
            idx.query(&c, "not a path"),
            Err(QueryError::Parse(_))
        ));
    }
}

#[cfg(test)]
mod outcome_tests {
    use crate::options::FixOptions;
    use crate::Collection;

    #[test]
    fn results_serialize_back_to_xml() {
        let mut c = Collection::new();
        c.add_xml("<bib><article><title>Holistic <i>Twig</i> Joins</title></article></bib>")
            .unwrap();
        let idx = crate::FixIndex::build(&mut c, FixOptions::large_document(4));
        let out = idx.query(&c, "//article/title").unwrap();
        let xml = out.results_xml(&c);
        assert_eq!(xml.len(), 1);
        assert_eq!(xml[0], "<title>Holistic <i>Twig</i> Joins</title>");
        let text = out.results_text(&c);
        assert_eq!(text[0], "Holistic Twig Joins");
    }
}
