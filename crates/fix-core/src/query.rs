//! Query processing — Algorithm 2 (`INDEX-PROCESSOR`).
//!
//! 1. Decompose the path expression into twig blocks (Section 5); the top
//!    block carries the pruning.
//! 2. Check that the index covers the block (depth-limit test).
//! 3. Convert the block to its twig pattern, translate to a matrix, and
//!    compute `(λ_max, λ_min)`.
//! 4. Range-scan the B-tree for entries whose stored range *contains* the
//!    query range (and whose root label matches when the probe is
//!    anchored).
//! 5. Refine every candidate with the configured operator, the leading
//!    `//` rewritten to `/` (candidates are rooted exactly at the anchor).

use std::fmt;

use fix_bisim::{query_pattern_with_values, UnitInfo};
use fix_exec::{eval_path, eval_path_from, eval_twig};
use fix_spectral::Features;
use fix_xml::NodeId;
use fix_xpath::{decompose, parse_path, Axis, PathExpr, TwigError, TwigQuery, XPathError};

use crate::builder::FixIndex;
use crate::collection::{Collection, DocId};
use crate::key::{EntryPtr, IndexKey};
use crate::metrics::Metrics;
use crate::options::RefineOp;

/// Why a query could not be processed through the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query string failed to parse.
    Parse(XPathError),
    /// The index's depth limit does not cover the query's top twig block —
    /// the optimizer must fall back to an unindexed plan (Section 4.4).
    NotCovered {
        /// Depth of the query's top block.
        query_depth: usize,
        /// The index's depth limit.
        depth_limit: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::NotCovered {
                query_depth,
                depth_limit,
            } => write!(
                f,
                "query depth {query_depth} exceeds the index depth limit {depth_limit}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<XPathError> for QueryError {
    fn from(e: XPathError) -> Self {
        QueryError::Parse(e)
    }
}

/// The outcome of one indexed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Final results: `(document, output node)` pairs in document order.
    pub results: Vec<(DocId, NodeId)>,
    /// The Section 6.2 counters for this query.
    pub metrics: Metrics,
}

impl QueryOutcome {
    /// Serializes each result's subtree back to XML (the
    /// "return the matched elements" consumer API).
    pub fn results_xml(&self, coll: &Collection) -> Vec<String> {
        self.results
            .iter()
            .map(|&(doc, node)| {
                let d = coll.doc(doc);
                let mut out = String::new();
                fix_xml::serialize::subtree_to_xml(d, &coll.labels, node, &mut out);
                out
            })
            .collect()
    }

    /// The concatenated text content of each result.
    pub fn results_text(&self, coll: &Collection) -> Vec<String> {
        self.results
            .iter()
            .map(|&(doc, node)| coll.doc(doc).text_content(node))
            .collect()
    }
}

impl FixIndex {
    /// Parses and runs a query (see [`FixIndex::query_path`]).
    pub fn query(&self, coll: &Collection, query: &str) -> Result<QueryOutcome, QueryError> {
        let path = parse_path(query)?;
        self.query_path(coll, &path)
    }

    /// Runs a parsed path expression through prune + refine. The
    /// expression is normalized first (duplicate/implied predicates
    /// dropped; see `fix_xpath::normalize`) — a cheap logical rewrite that
    /// also canonicalizes the feature computation.
    pub fn query_path(
        &self,
        coll: &Collection,
        path: &PathExpr,
    ) -> Result<QueryOutcome, QueryError> {
        let path = fix_xpath::normalize(path);
        let candidates = self.candidates(coll, &path)?;
        Ok(self.refine(coll, &path, candidates))
    }

    /// The pruning phase alone: candidate `(entry key, B-tree value)`
    /// pairs in key order. Exposed separately so the experiment harness can
    /// measure pruning power without paying for refinement.
    pub fn candidates(
        &self,
        coll: &Collection,
        path: &PathExpr,
    ) -> Result<Vec<(IndexKey, u64)>, QueryError> {
        let blocks = decompose(path);
        let top = &blocks[0];
        // Pruning features of the top block.
        let top_feat = match self.block_features(coll, top)? {
            Some(f) => f,
            None => return Ok(Vec::new()),
        };
        // Anchored probes (every entry is rooted at a potential anchor):
        // large-document mode always; collection mode when the query is
        // rooted at the document root.
        let anchored = self.opts.depth_limit > 0 || top.steps[0].axis == Axis::Child;
        let mut cands: Vec<(IndexKey, u64)> = if anchored {
            self.btree
                .range(
                    &IndexKey::scan_start(&top_feat),
                    Some(&IndexKey::scan_end(&top_feat)),
                )
                .map(|(k, v)| (IndexKey::decode(&k), v))
                .filter(|(k, _)| self.entry_contains(k, &top_feat, true))
                .collect()
        } else {
            // Un-anchored collection probe: the pattern can root anywhere
            // inside a document, so only the eigenvalue range prunes.
            self.btree
                .iter()
                .map(|(k, v)| (IndexKey::decode(&k), v))
                .filter(|(k, _)| self.entry_contains(k, &top_feat, false))
                .collect()
        };
        // Tombstoned documents never appear as candidates. (Clustered
        // values point into the copy heap; their document is resolved — and
        // filtered — during refinement instead.)
        if !self.removed.is_empty() && self.clustered.is_none() {
            cands.retain(|&(_, v)| !self.removed.contains(&EntryPtr::from_u64(v).doc));
        }
        // In collection mode the remaining blocks prune too: the document
        // must contain every block (Section 5). With a positive depth
        // limit they give no pruning power (only the top block is anchored
        // at the entry root).
        if self.opts.depth_limit == 0 && blocks.len() > 1 && !cands.is_empty() {
            for block in &blocks[1..] {
                let bf = match self.block_features(coll, block)? {
                    Some(f) => f,
                    None => return Ok(Vec::new()),
                };
                cands.retain(|(k, _)| self.entry_contains(k, &bf, false));
                if cands.is_empty() {
                    break;
                }
            }
        }
        Ok(cands)
    }

    /// Computes pruning features for one twig block; `Ok(None)` when the
    /// block provably matches nothing (unknown label, unknown edge pair,
    /// unknown value bucket).
    pub(crate) fn block_features(
        &self,
        coll: &Collection,
        block: &PathExpr,
    ) -> Result<Option<Features>, QueryError> {
        let twig = match TwigQuery::from_path(block, &coll.labels) {
            Ok(t) => t,
            Err(TwigError::UnknownLabel(_)) => return Ok(None),
            Err(TwigError::NotATwig) => unreachable!("decompose produces twig blocks"),
        };
        // If the index has no value labels, prune with the structural
        // skeleton; refinement checks the values.
        let twig = if twig.has_values() && self.hasher.is_none() {
            twig.strip_values()
        } else {
            twig
        };
        if self.opts.depth_limit > 0 && twig.depth() > self.opts.depth_limit {
            return Err(QueryError::NotCovered {
                query_depth: twig.depth(),
                depth_limit: self.opts.depth_limit,
            });
        }
        let (pattern, pinfo): (_, UnitInfo) = if twig.has_values() {
            let h = self.hasher.as_ref().expect("values imply a hasher");
            // All value buckets must exist, otherwise no indexed document
            // contains such a value.
            for node in &twig.nodes {
                if let Some(v) = &node.value {
                    if h.label(v, &coll.labels).is_none() {
                        return Ok(None);
                    }
                }
            }
            query_pattern_with_values(&twig, |v| h.label(v, &coll.labels).expect("checked above"))
        } else {
            fix_bisim::query_pattern(&twig)
        };
        let mut feat = match self
            .opts
            .extractor
            .extract_query(&pattern, pinfo.root, &self.encoder)
        {
            Some(f) => f,
            None => return Ok(None),
        };
        // Non-injective guard (SymmetricNorm mode only; SkewSpectral stays
        // paper-faithful). A query whose *tree* repeats a label admits
        // matches that are non-injective (two query nodes on one document
        // node) or non-homomorphic on the minimized pattern (two identical
        // query leaves collapse into one shared vertex, yet match document
        // nodes with different subtrees — a counterexample to the paper's
        // Theorem 2; see DESIGN.md §2). Either way spectral monotonicity
        // fails. The widest range that stays sound is the query's maximum
        // single edge weight: every entry matching the query contains that
        // edge, and a single non-negative edge already forces
        // λ_max ≥ weight (Perron). The duplicate test must run on the twig
        // *tree*, pre-collapse — the collapsed pattern can look
        // duplicate-free exactly in the failing cases.
        if self.opts.extractor.mode == fix_spectral::FeatureMode::SymmetricNorm {
            let mut seen = std::collections::HashSet::new();
            let mut dup = false;
            for node in &twig.nodes {
                if !seen.insert(node.label) {
                    dup = true;
                }
                if let (Some(v), Some(h)) = (&node.value, &self.hasher) {
                    if let Some(l) = h.label(v, &coll.labels) {
                        if !seen.insert(l) {
                            dup = true;
                        }
                    }
                }
            }
            if dup {
                let mut max_w = 0.0f64;
                for v in pattern.iter() {
                    for &c in pattern.children(v) {
                        let w = self
                            .encoder
                            .lookup(pattern.label(v), pattern.label(c))
                            .unwrap_or(0.0);
                        max_w = max_w.max(w);
                    }
                }
                feat.lmax = max_w;
                feat.lmin = -max_w;
                feat.sigma2 = 0.0;
                // `feat.bloom` stays: edge fingerprints are sound even for
                // non-injective matches (labeled edges are preserved by any
                // match).
            }
        }
        Ok(Some(feat))
    }

    /// Range-containment test against a stored entry key.
    fn entry_contains(&self, entry: &IndexKey, query: &Features, check_root: bool) -> bool {
        if check_root && entry.root != query.root {
            return false;
        }
        let eps = |v: f64| 1e-9 * (1.0 + v.abs());
        let base = query.lmax <= entry.lmax + eps(entry.lmax)
            && query.lmin >= entry.lmin - eps(entry.lmin);
        if !base {
            return false;
        }
        if self.opts.extended_features && query.sigma2 > entry.sigma2 + eps(entry.sigma2) {
            return false;
        }
        if self.opts.edge_bloom && query.bloom & !entry.bloom != 0 {
            return false;
        }
        true
    }

    /// The refinement phase: validate candidates and assemble results.
    pub fn refine(
        &self,
        coll: &Collection,
        path: &PathExpr,
        candidates: Vec<(IndexKey, u64)>,
    ) -> QueryOutcome {
        let mut producing = 0u64;
        let mut results: Vec<(DocId, NodeId)> = Vec::new();
        let cdt = candidates.len() as u64;
        // Precompute the twig for the structural refinement ablation.
        let twig_for_refine = if self.opts.refine == RefineOp::Twig && self.opts.depth_limit == 0 {
            TwigQuery::from_path(path, &coll.labels).ok()
        } else {
            None
        };
        for (_, value) in candidates {
            let ptr = if self.clustered.is_some() {
                // Clustered: fetch the copy (sequential I/O — candidates
                // arrive in key order) and recover the pointer.
                let (ptr, _bytes) = self.clustered_fetch(value);
                ptr
            } else {
                EntryPtr::from_u64(value)
            };
            if self.removed.contains(&ptr.doc) {
                continue;
            }
            let doc = coll.doc(ptr.doc);
            // Charge the primary-storage read for this candidate: the
            // whole (small) document in collection mode, the pattern
            // instance's subtree in large-document mode. The clustered
            // variant already paid for its copy instead.
            if self.clustered.is_none() {
                if self.opts.depth_limit == 0 {
                    coll.touch_document(ptr.doc);
                } else {
                    coll.touch_subtree(ptr.doc, NodeId(ptr.node));
                }
            }
            let rs: Vec<NodeId> = if self.opts.depth_limit == 0 {
                match &twig_for_refine {
                    Some(t) => eval_twig(doc, t),
                    None => eval_path(doc, &coll.labels, path),
                }
            } else if path.steps[0].axis == Axis::Child && NodeId(ptr.node) != doc.root() {
                // A rooted query (`/a/...`) can only anchor at the document
                // root; any other entry in the partition is a false
                // positive.
                Vec::new()
            } else {
                eval_path_from(doc, &coll.labels, path, NodeId(ptr.node))
            };
            if !rs.is_empty() {
                producing += 1;
                results.extend(rs.into_iter().map(|n| (ptr.doc, n)));
            }
        }
        results.sort_unstable();
        results.dedup();
        QueryOutcome {
            results,
            metrics: Metrics {
                entries: self.btree.len(),
                candidates: cdt,
                producing,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FixOptions;

    fn bib_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<bib><article><author><email/></author><title>t1</title><ee/></article></bib>")
            .unwrap();
        c.add_xml("<bib><book><author><phone/></author><title>t2</title></book></bib>")
            .unwrap();
        c.add_xml(
            "<bib><article><author><phone/><email/></author><title>t3</title></article></bib>",
        )
        .unwrap();
        c
    }

    #[test]
    fn collection_query_end_to_end() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//article[author]/ee").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
        assert_eq!(out.metrics.entries, 3);
        assert!(out.metrics.candidates >= 1);
        assert_eq!(out.metrics.producing, 1);
    }

    #[test]
    fn rooted_collection_query_uses_root_partition() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "/bib/book/author/phone").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(1));
    }

    #[test]
    fn large_document_query_anchors_per_element() {
        let mut c = Collection::new();
        c.add_xml("<s><s><np/><s><np/><vp/></s></s><vp/><empty><s><np/></s></empty></s>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(4));
        let out = idx.query(&c, "//s[np][vp]").unwrap();
        assert_eq!(out.results.len(), 1);
        let out2 = idx.query(&c, "//empty/s/np").unwrap();
        assert_eq!(out2.results.len(), 1);
        // Results agree with the navigational baseline.
        let p = parse_path("//s/np").unwrap();
        let base = eval_path(c.doc(DocId(0)), &c.labels, &p);
        let via_index = idx.query(&c, "//s/np").unwrap();
        assert_eq!(via_index.results.len(), base.len());
    }

    #[test]
    fn not_covered_query_is_rejected() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(2));
        let err = idx.query(&c, "//bib/article/author/email").unwrap_err();
        assert!(matches!(
            err,
            QueryError::NotCovered {
                query_depth: 4,
                depth_limit: 2
            }
        ));
    }

    #[test]
    fn unknown_labels_yield_empty_without_error() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//nonexistent/label").unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.metrics.candidates, 0);
    }

    #[test]
    fn interior_descendant_queries_decompose() {
        let mut c = Collection::new();
        c.add_xml(
            "<site><open_auction><seller/><annotation><description><price/></description></annotation></open_auction></site>",
        )
        .unwrap();
        c.add_xml("<site><closed_auction><price/></closed_auction></site>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        let out = idx.query(&c, "//open_auction//price").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
    }

    #[test]
    fn clustered_and_unclustered_agree() {
        let mut c1 = bib_collection();
        let u = FixIndex::build(&mut c1, FixOptions::collection());
        let mut c2 = bib_collection();
        let cl = FixIndex::build(&mut c2, FixOptions::collection().clustered());
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "//book/title",
            "/bib/article/author",
        ] {
            let a = u.query(&c1, q).unwrap();
            let b = cl.query(&c2, q).unwrap();
            assert_eq!(a.results, b.results, "disagreement on {q}");
            assert_eq!(a.metrics, b.metrics, "metric disagreement on {q}");
        }
    }

    #[test]
    fn value_queries_prune_through_the_value_index() {
        let mut c = Collection::new();
        c.add_xml("<dblp><proceedings><publisher>Springer</publisher><title>a</title></proceedings></dblp>").unwrap();
        c.add_xml(
            "<dblp><proceedings><publisher>ACM</publisher><title>b</title></proceedings></dblp>",
        )
        .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(3).with_values(64));
        let out = idx
            .query(&c, r#"//proceedings[publisher="Springer"][title]"#)
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
        // Pruning is containment-based, so the ACM entry may or may not
        // survive (its wider structural range can cover the query range);
        // the guarantee is only "no false negatives".
        assert!(out.metrics.candidates >= 1);
        assert_eq!(out.metrics.producing, 1);
        // A value that was never indexed short-circuits to empty.
        let out2 = idx
            .query(&c, r#"//proceedings[publisher="Elsevier"]"#)
            .unwrap();
        assert!(out2.results.is_empty());
    }

    #[test]
    fn structural_index_still_answers_value_queries() {
        let mut c = Collection::new();
        c.add_xml("<dblp><inproceedings><year>1998</year><title>x</title></inproceedings></dblp>")
            .unwrap();
        c.add_xml("<dblp><inproceedings><year>1999</year><title>y</title></inproceedings></dblp>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(3));
        let out = idx
            .query(&c, r#"//inproceedings[year="1998"]/title"#)
            .unwrap();
        assert_eq!(out.results.len(), 1);
        // Both inproceedings are candidates (structure identical) — the
        // value filter happens in refinement.
        assert_eq!(out.metrics.candidates, 2);
        assert_eq!(out.metrics.producing, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let mut c = bib_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        assert!(matches!(
            idx.query(&c, "not a path"),
            Err(QueryError::Parse(_))
        ));
    }
}

#[cfg(test)]
mod outcome_tests {
    use crate::options::FixOptions;
    use crate::Collection;

    #[test]
    fn results_serialize_back_to_xml() {
        let mut c = Collection::new();
        c.add_xml("<bib><article><title>Holistic <i>Twig</i> Joins</title></article></bib>")
            .unwrap();
        let idx = crate::FixIndex::build(&mut c, FixOptions::large_document(4));
        let out = idx.query(&c, "//article/title").unwrap();
        let xml = out.results_xml(&c);
        assert_eq!(xml.len(), 1);
        assert_eq!(xml[0], "<title>Holistic <i>Twig</i> Joins</title>");
        let text = out.results_text(&c);
        assert_eq!(text[0], "Holistic Twig Joins");
    }
}
