//! Write-ahead log: segmented, checksummed, group-committed.
//!
//! The WAL makes mutations durable without rewriting the whole database
//! file. It lives in a directory beside the `.fixdb` (`<db>.wal/`) as a
//! sequence of *segment* files:
//!
//! ```text
//! segment:  magic[8] = "FIXWAL\0\x01"   base-image token[12]   seg id:u64le
//! record:   len:u32le  crc32(payload):u32le  payload[len]
//! ```
//!
//! Records reuse the v3 framing discipline (length + CRC32 per payload);
//! payloads are opaque here — the engine encodes its batch operations
//! into them. A segment grows until it passes the seal threshold, is
//! fsynced and closed (*sealed*), and a new tail segment starts; the
//! engine freezes each sealed segment's in-memory entries into an L0
//! sorted run, so the segment boundary is also the run boundary.
//!
//! # Base-image token
//!
//! A WAL is only meaningful relative to the exact database image it
//! extends: replaying it onto any other image would double-apply or
//! misapply operations. Every segment header therefore carries a 12-byte
//! *token* of the base image — file length plus a CRC32 of the file's
//! tail bytes — captured when the WAL was (re)based. [`Wal::recover`]
//! compares the token against the current file and silently discards the
//! whole log on mismatch (the classic case: a save completed but the
//! process died before the post-save truncation, so the image already
//! contains every logged operation).
//!
//! # Group commit
//!
//! [`Wal::append`] frames and writes the record, then applies the
//! [`Durability`] policy:
//!
//! * [`Durability::Sync`] — the append joins a *group fsync*: the first
//!   waiter becomes leader and fsyncs once for every record appended up
//!   to that point; concurrent writers blocked behind it are acknowledged
//!   by the same fsync. One disk flush, many commits.
//! * [`Durability::Group`] — the append is acknowledged immediately; a
//!   background flusher fsyncs at least once per `max_wait`, so a crash
//!   loses at most the last window.
//! * [`Durability::Async`] — no explicit fsync; the OS decides (sealing
//!   still fsyncs the finished segment).
//!
//! # Crash recovery
//!
//! [`Wal::recover`] walks segments in id order and records in file order,
//! stopping at the first frame whose length or checksum fails — the torn
//! tail of the crashed append. The valid prefix is returned for replay;
//! the torn suffix (and any later segment) is physically truncated so new
//! appends continue from a clean tail. Fault injection for the crash
//! matrix reuses [`FaultPlan`]: each record write is one logical
//! boundary, with [`FaultKind::Error`] / [`FaultKind::Torn`] /
//! [`FaultKind::Truncate`] semantics identical to [`FaultFile`]'s.
//!
//! [`FaultFile`]: crate::FaultFile

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use fix_obs::event::{Category, EventRecorder, FieldValue, Severity};
use fix_obs::{names, Counter, Gauge, Histogram, MetricsRegistry};

use crate::crc::crc32;
use crate::fault::{FaultKind, FaultPlan};

/// Segment-file magic: "FIXWAL", NUL, format version 1.
pub const WAL_MAGIC: &[u8; 8] = b"FIXWAL\0\x01";
/// Segment header: magic + base-image token + segment id.
const SEG_HEADER_LEN: usize = 8 + TOKEN_LEN + 8;
/// Record frame header: payload length + payload CRC32.
const REC_HEADER_LEN: usize = 4 + 4;
/// Hard upper bound on a single record payload (corrupted length guard).
const MAX_RECORD_LEN: u32 = 1 << 30;
/// Base-image token length: file length (u64) + tail CRC32 (u32).
pub const TOKEN_LEN: usize = 12;

/// Identifies the database image a WAL extends (see module docs).
pub type BaseToken = [u8; TOKEN_LEN];

/// When an acknowledged commit is actually on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Every commit is fsynced before it is acknowledged; concurrent
    /// committers share one group fsync.
    #[default]
    Sync,
    /// Commits are acknowledged immediately; a background flusher fsyncs
    /// at least once per `max_wait`, bounding loss to the last window.
    Group {
        /// Maximum time an acknowledged commit may wait for its fsync.
        max_wait: Duration,
    },
    /// No explicit fsync; the OS write-back cache decides.
    Async,
}

impl Durability {
    /// Short lowercase name (`sync` / `group` / `async`), the CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Durability::Sync => "sync",
            Durability::Group { .. } => "group",
            Durability::Async => "async",
        }
    }
}

/// Cumulative WAL counters plus the current segment levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Live segment files (sealed ones not yet checkpointed + the tail).
    pub segments: u64,
    /// Records across all live segments.
    pub records: u64,
    /// Records in the unsealed tail segment.
    pub tail_records: u64,
    /// Bytes in the unsealed tail segment (header included).
    pub tail_bytes: u64,
    /// Appends acknowledged since this `Wal` was opened.
    pub appends: u64,
    /// Payload bytes appended since this `Wal` was opened.
    pub appended_bytes: u64,
    /// fsync calls issued since this `Wal` was opened.
    pub fsyncs: u64,
    /// Segments sealed since this `Wal` was opened.
    pub seals: u64,
    /// Records replayed by [`Wal::recover`] when this `Wal` was opened.
    pub replayed: u64,
}

/// What [`Wal::append`] did.
#[derive(Debug, Clone, Copy)]
pub struct AppendOutcome {
    /// Commit sequence number (1-based, monotone within this `Wal`).
    pub seq: u64,
    /// True when this append pushed the segment past the seal threshold:
    /// the segment holding this record (and everything before it) is now
    /// sealed and a fresh tail segment is open.
    pub sealed: bool,
}

/// One recovered segment, in id order: its records (valid prefix) and
/// whether it was sealed (every segment but the last).
#[derive(Debug)]
pub struct ReplayedSegment {
    /// True for every segment except the unsealed tail.
    pub sealed: bool,
    /// The segment's record payloads in append order.
    pub records: Vec<Vec<u8>>,
}

/// What [`Wal::recover`] found and did, kept on the `Wal` (see
/// [`Wal::recovery`]) so the engine can narrate recovery into the flight
/// recorder without widening `recover`'s return shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Records handed back for replay.
    pub replayed_records: u64,
    /// A log existed but was discarded whole: its base-image token did
    /// not match the current image (or the image is gone entirely).
    pub stale_discarded: bool,
    /// A torn frame was found at the tail and truncated away.
    pub torn_tail: bool,
    /// Bytes the torn-tail truncation dropped.
    pub torn_bytes: u64,
    /// Segment files deleted (stale, post-torn, or image-less).
    pub wiped_segments: u64,
}

/// Observability handles the WAL records through once attached
/// ([`Wal::attach_obs`]): write-path latency histograms, group-commit
/// amortization counters, and the flight-recorder events for seals and
/// flush cycles. Everything is pre-resolved so the hot path never touches
/// the registry lock.
pub struct WalObs {
    append_ns: Arc<Histogram>,
    fsync_ns: Arc<Histogram>,
    group_commits: Arc<Counter>,
    group_queue_depth: Arc<Gauge>,
    events: Arc<EventRecorder>,
}

impl WalObs {
    /// Resolves the WAL's metric handles in `registry` and pairs them with
    /// the shared event recorder.
    pub fn new(registry: &MetricsRegistry, events: Arc<EventRecorder>) -> Self {
        Self {
            append_ns: registry.histogram(names::WAL_APPEND_NS),
            fsync_ns: registry.histogram(names::WAL_FSYNC_NS),
            group_commits: registry.counter(names::WAL_GROUP_COMMITS),
            group_queue_depth: registry.gauge(names::WAL_GROUP_QUEUE_DEPTH),
            events,
        }
    }
}

/// Mutable state: the tail segment file and its counters.
struct WalInner {
    file: File,
    seg_id: u64,
    /// Bytes written to the tail segment (header included).
    tail_bytes: u64,
    tail_records: u64,
    /// Records in sealed-but-live segments.
    sealed_records: u64,
    segments: u64,
    /// Logical write boundaries seen (for [`FaultPlan::nth`]).
    writes: usize,
    fault: Option<FaultPlan>,
    /// A `Truncate` fault tripped: swallow writes, fail at sync.
    dropping: bool,
    durability: Durability,
}

/// Group-commit state shared between committers and the flusher.
#[derive(Default)]
struct SyncState {
    /// Highest sequence number appended.
    appended: u64,
    /// Highest sequence number known durable.
    synced: u64,
    /// A leader is currently fsyncing on behalf of the group.
    syncing: bool,
}

struct WalShared {
    dir: PathBuf,
    token: Mutex<BaseToken>,
    seal_bytes: AtomicU64,
    inner: Mutex<WalInner>,
    sync: Mutex<SyncState>,
    cond: Condvar,
    /// Flusher handshake: work is pending / shut down.
    dirty: Mutex<bool>,
    flush_cond: Condvar,
    shutdown: AtomicBool,
    appends: AtomicU64,
    appended_bytes: AtomicU64,
    fsyncs: AtomicU64,
    seals: AtomicU64,
    replayed: AtomicU64,
    /// What recovery found at open (immutable after construction).
    recovery: RecoveryInfo,
    /// Observability handles; empty until [`Wal::attach_obs`].
    obs: OnceLock<WalObs>,
}

/// The write-ahead log (see module docs).
pub struct Wal {
    shared: Arc<WalShared>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// The base-image token of the database file at `path`: its length plus
/// a CRC32 over its final (up to) 64 bytes — both formats end in
/// checksum-bearing footers, so any save produces a fresh token. `None`
/// when the file does not exist.
pub fn db_token(path: &Path) -> io::Result<Option<BaseToken>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let len = f.metadata()?.len();
    let tail = len.min(64);
    f.seek(SeekFrom::End(-(tail as i64)))?;
    let mut buf = vec![0u8; tail as usize];
    f.read_exact(&mut buf)?;
    let mut token = [0u8; TOKEN_LEN];
    token[..8].copy_from_slice(&len.to_le_bytes());
    token[8..].copy_from_slice(&crc32(&buf).to_le_bytes());
    Ok(Some(token))
}

/// The conventional WAL directory for a database file: `<db>.wal/`.
pub fn wal_dir(db_path: &Path) -> PathBuf {
    let mut name = db_path.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    db_path.with_file_name(name)
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

/// Lists segment files in `dir`, sorted by id.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(segs),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push((id, entry.path()));
        }
    }
    segs.sort();
    Ok(segs)
}

/// Parses one segment file: header validation plus the valid record
/// prefix. Returns the records and the byte offset where validity ends
/// (== file length for a clean segment).
fn read_segment(path: &Path, want_token: &BaseToken) -> io::Result<Option<(Vec<Vec<u8>>, u64)>> {
    let mut data = fs::read(path)?;
    // One WAL recover read = one injectable read boundary. A torn fault
    // lands in CRC-framed territory: the frame walk below stops at the
    // first bad record, which recovery treats as a torn tail.
    crate::fault::read_boundary(&mut data)?;
    if data.len() < SEG_HEADER_LEN
        || &data[..8] != WAL_MAGIC
        || &data[8..8 + TOKEN_LEN] != want_token
    {
        return Ok(None);
    }
    let mut records = Vec::new();
    let mut pos = SEG_HEADER_LEN;
    while let Some(header) = data.get(pos..pos + REC_HEADER_LEN) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(payload) = data.get(pos + REC_HEADER_LEN..pos + REC_HEADER_LEN + len as usize)
        else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos += REC_HEADER_LEN + len as usize;
    }
    Ok(Some((records, pos as u64)))
}

fn write_segment_header(file: &mut File, token: &BaseToken, id: u64) -> io::Result<u64> {
    let mut header = Vec::with_capacity(SEG_HEADER_LEN);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(token);
    header.extend_from_slice(&id.to_le_bytes());
    file.write_all(&header)?;
    Ok(SEG_HEADER_LEN as u64)
}

impl Wal {
    /// Opens (or creates) the WAL at `dir` for a database image identified
    /// by `token`, recovering whatever valid records it holds.
    ///
    /// * `token == None` means "no base image exists yet": any log found
    ///   is stale by definition and is wiped (logging against a
    ///   non-existent image is impossible — callers checkpoint first).
    /// * A token mismatch in the first live segment wipes the log: the
    ///   image moved underneath it (save completed, truncation did not).
    /// * Otherwise segments are replayed in order up to the first invalid
    ///   frame; the torn suffix is truncated and later segments deleted.
    ///
    /// Returns the ready-to-append `Wal` and the replayed segments.
    pub fn recover(
        dir: &Path,
        token: Option<BaseToken>,
        durability: Durability,
        seal_bytes: u64,
    ) -> io::Result<(Wal, Vec<ReplayedSegment>)> {
        fs::create_dir_all(dir)?;
        let mut segs = list_segments(dir)?;
        let mut replayed = Vec::new();
        let mut info = RecoveryInfo::default();
        let token = match token {
            Some(t) => t,
            None => {
                info.stale_discarded = !segs.is_empty();
                info.wiped_segments = segs.len() as u64;
                for (_, p) in segs.drain(..) {
                    fs::remove_file(p)?;
                }
                [0u8; TOKEN_LEN]
            }
        };
        let mut torn = false;
        let mut tail: Option<(u64, PathBuf, u64)> = None; // id, path, valid len
        let mut wipe_from = segs.len();
        for (i, (id, path)) in segs.iter().enumerate() {
            if torn {
                wipe_from = wipe_from.min(i);
                break;
            }
            match read_segment(path, &token)? {
                None => {
                    // Foreign or stale segment: everything from here on is
                    // unusable (first segment stale == whole log stale).
                    wipe_from = i;
                    break;
                }
                Some((records, valid_len)) => {
                    let full = fs::metadata(path)?.len();
                    if valid_len < full {
                        // Torn tail: keep the valid prefix, drop the rest
                        // of this segment and every later one.
                        torn = true;
                        info.torn_tail = true;
                        info.torn_bytes = full - valid_len;
                    }
                    replayed.push(ReplayedSegment {
                        sealed: false, // fixed up below
                        records,
                    });
                    tail = Some((*id, path.clone(), valid_len));
                    wipe_from = i + 1;
                }
            }
        }
        info.wiped_segments += segs[wipe_from..].len() as u64;
        for (_, p) in &segs[wipe_from..] {
            fs::remove_file(p)?;
        }
        if wipe_from == 0 {
            // First live segment was foreign or stale: the whole log is
            // discarded (classic checkpoint-then-crash token mismatch).
            info.stale_discarded |= !segs.is_empty();
            replayed.clear();
            tail = None;
        }
        // Every recovered segment but the last was sealed.
        let n = replayed.len();
        for (i, seg) in replayed.iter_mut().enumerate() {
            seg.sealed = i + 1 < n;
        }
        let replayed_records: u64 = replayed.iter().map(|s| s.records.len() as u64).sum();
        info.replayed_records = replayed_records;
        let sealed_records = replayed
            .iter()
            .filter(|s| s.sealed)
            .map(|s| s.records.len() as u64)
            .sum();

        // Re-open the tail for appending (truncated to its valid prefix),
        // or start segment 1 afresh.
        let (file, seg_id, tail_bytes, tail_records, segments) = match tail {
            Some((id, path, valid_len)) => {
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.set_len(valid_len)?;
                let mut file = file;
                file.seek(SeekFrom::End(0))?;
                let tail_records = replayed.last().map(|s| s.records.len() as u64).unwrap_or(0);
                (file, id, valid_len, tail_records, replayed.len() as u64)
            }
            None => {
                let path = seg_path(dir, 1);
                let mut file = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&path)?;
                let len = write_segment_header(&mut file, &token, 1)?;
                (file, 1, len, 0, 1)
            }
        };
        let shared = Arc::new(WalShared {
            dir: dir.to_path_buf(),
            token: Mutex::new(token),
            seal_bytes: AtomicU64::new(seal_bytes),
            inner: Mutex::new(WalInner {
                file,
                seg_id,
                tail_bytes,
                tail_records,
                sealed_records,
                segments,
                writes: 0,
                fault: None,
                dropping: false,
                durability,
            }),
            sync: Mutex::new(SyncState::default()),
            cond: Condvar::new(),
            dirty: Mutex::new(false),
            flush_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            appends: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed_records),
            recovery: info,
            obs: OnceLock::new(),
        });
        let flusher = Some(spawn_flusher(shared.clone()));
        Ok((Wal { shared, flusher }, replayed))
    }

    /// Attaches observability: write-path histograms land in `registry`
    /// and seals/flush cycles are narrated to `events`. Call once, right
    /// after [`Wal::recover`]; later calls are ignored. Without this the
    /// WAL records nothing beyond its own counters.
    pub fn attach_obs(&self, registry: &MetricsRegistry, events: Arc<EventRecorder>) {
        let _ = self.shared.obs.set(WalObs::new(registry, events));
    }

    /// What recovery found when this `Wal` was opened.
    pub fn recovery(&self) -> RecoveryInfo {
        self.shared.recovery
    }

    /// True when the log holds no records (nothing to replay).
    pub fn is_empty(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap();
        inner.tail_records == 0 && inner.sealed_records == 0
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The current durability policy.
    pub fn durability(&self) -> Durability {
        self.shared.inner.lock().unwrap().durability
    }

    /// Changes the durability policy for subsequent appends.
    pub fn set_durability(&self, durability: Durability) {
        self.shared.inner.lock().unwrap().durability = durability;
    }

    /// Changes the segment seal threshold for subsequent appends. Seal
    /// decisions already taken are embodied in the on-disk segment
    /// boundaries, so recovery replays them unchanged regardless of the
    /// threshold the replaying process opens with.
    pub fn set_seal_bytes(&self, bytes: u64) {
        self.shared.seal_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Installs (or clears) a deterministic write fault: the `nth`
    /// logical WAL write from now on misbehaves per [`FaultKind`]. Resets
    /// the boundary counter so sweeps are reproducible.
    pub fn set_fault(&self, plan: Option<FaultPlan>) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.fault = plan;
        inner.writes = 0;
        inner.dropping = false;
    }

    /// Appends one record and applies the durability policy. On error the
    /// tail may hold a torn frame; the caller should stop using the log
    /// until the next checkpoint rebases it (recovery truncates the torn
    /// frame either way).
    pub fn append(&self, payload: &[u8]) -> io::Result<AppendOutcome> {
        let shared = &self.shared;
        let (seq, sealed, durability) = {
            let mut inner = shared.inner.lock().unwrap();
            let t0 = Instant::now();
            let mut frame = Vec::with_capacity(REC_HEADER_LEN + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            write_faulted(&mut inner, &frame)?;
            if let Some(obs) = shared.obs.get() {
                obs.append_ns.record_duration(t0.elapsed());
            }
            inner.tail_bytes += frame.len() as u64;
            inner.tail_records += 1;
            let seq = {
                let mut sync = shared.sync.lock().unwrap();
                sync.appended += 1;
                sync.appended
            };
            shared.appends.fetch_add(1, Ordering::Relaxed);
            shared
                .appended_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            let sealed = if inner.tail_bytes >= shared.seal_bytes.load(Ordering::Relaxed) {
                seal_locked(shared, &mut inner)?;
                true
            } else {
                false
            };
            (seq, sealed, inner.durability)
        };
        match durability {
            Durability::Sync => self.group_sync(seq)?,
            Durability::Group { .. } => {
                let mut dirty = shared.dirty.lock().unwrap();
                *dirty = true;
                shared.flush_cond.notify_one();
            }
            Durability::Async => {}
        }
        Ok(AppendOutcome { seq, sealed })
    }

    /// Blocks until every record appended so far is fsynced.
    pub fn sync(&self) -> io::Result<()> {
        let seq = self.shared.sync.lock().unwrap().appended;
        if seq > 0 {
            self.group_sync(seq)?;
        }
        Ok(())
    }

    /// The group-commit protocol: return once `seq` is durable, fsyncing
    /// on behalf of every waiter when no leader is already doing so.
    fn group_sync(&self, seq: u64) -> io::Result<()> {
        let shared = &self.shared;
        let mut sync = shared.sync.lock().unwrap();
        loop {
            if sync.synced >= seq {
                return Ok(());
            }
            if sync.syncing {
                sync = shared.cond.wait(sync).unwrap();
                continue;
            }
            sync.syncing = true;
            drop(sync);
            let result = fsync_tail(shared);
            sync = shared.sync.lock().unwrap();
            sync.syncing = false;
            match result {
                Ok(covered) => {
                    if let Some(obs) = shared.obs.get() {
                        if covered > sync.synced {
                            // One leader fsync acknowledged this many
                            // queued commits — the Sync-mode group.
                            obs.group_commits.inc();
                            obs.group_queue_depth.set((covered - sync.synced) as i64);
                        }
                    }
                    sync.synced = sync.synced.max(covered);
                    shared.cond.notify_all();
                }
                Err(e) => {
                    shared.cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Explicitly seals the tail segment (if it holds any records) and
    /// opens a fresh one. Returns whether a seal happened.
    pub fn seal(&self) -> io::Result<bool> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().unwrap();
        if inner.tail_records == 0 {
            return Ok(false);
        }
        seal_locked(shared, &mut inner)?;
        Ok(true)
    }

    /// Checkpoint: every logged record is now part of the image identified
    /// by `token`, so drop all segments and start a fresh tail bound to
    /// that token.
    pub fn rebase(&self, token: BaseToken) -> io::Result<()> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock().unwrap();
        for (_, p) in list_segments(&shared.dir)? {
            fs::remove_file(p)?;
        }
        *shared.token.lock().unwrap() = token;
        let path = seg_path(&shared.dir, 1);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        let len = write_segment_header(&mut file, &token, 1)?;
        inner.file = file;
        inner.seg_id = 1;
        inner.tail_bytes = len;
        inner.tail_records = 0;
        inner.sealed_records = 0;
        inner.segments = 1;
        inner.dropping = false;
        let mut sync = shared.sync.lock().unwrap();
        sync.synced = sync.appended;
        Ok(())
    }

    /// Snapshot of the WAL counters.
    pub fn stats(&self) -> WalStats {
        let shared = &self.shared;
        let inner = shared.inner.lock().unwrap();
        WalStats {
            segments: inner.segments,
            records: inner.sealed_records + inner.tail_records,
            tail_records: inner.tail_records,
            tail_bytes: inner.tail_bytes,
            appends: shared.appends.load(Ordering::Relaxed),
            appended_bytes: shared.appended_bytes.load(Ordering::Relaxed),
            fsyncs: shared.fsyncs.load(Ordering::Relaxed),
            seals: shared.seals.load(Ordering::Relaxed),
            replayed: shared.replayed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.flush_cond.notify_all();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// One logical WAL write, with the fault plan consulted (semantics match
/// [`FaultFile`](crate::FaultFile): `Error` loses the whole write, `Torn`
/// keeps a prefix, `Truncate` silently drops this and later writes and
/// surfaces at the next fsync).
fn write_faulted(inner: &mut WalInner, buf: &[u8]) -> io::Result<()> {
    let n = inner.writes;
    inner.writes += 1;
    if inner.dropping {
        return Ok(());
    }
    if let Some(p) = inner.fault {
        if n == p.nth {
            match p.kind {
                FaultKind::Error => return Err(io::Error::other("injected WAL write fault")),
                FaultKind::Torn { keep } => {
                    let k = keep.min(buf.len());
                    inner.file.write_all(&buf[..k])?;
                    return Err(io::Error::other("injected WAL write fault"));
                }
                FaultKind::Truncate => {
                    inner.dropping = true;
                    return Ok(());
                }
                FaultKind::DiskFull => return Err(crate::fault::disk_full_error()),
            }
        }
    }
    inner.file.write_all(buf)
}

/// fsyncs the tail segment, returning the highest sequence number the
/// flush covers (everything appended before it started).
fn fsync_tail(shared: &WalShared) -> io::Result<u64> {
    let inner = shared.inner.lock().unwrap();
    if inner.dropping {
        return Err(io::Error::other("injected WAL write fault"));
    }
    let covered = shared.sync.lock().unwrap().appended;
    let t0 = Instant::now();
    inner.file.sync_data()?;
    shared.fsyncs.fetch_add(1, Ordering::Relaxed);
    if let Some(obs) = shared.obs.get() {
        obs.fsync_ns.record_duration(t0.elapsed());
    }
    Ok(covered)
}

/// Seals the tail segment under the inner lock: fsync, then open the next
/// segment. Everything in the sealed segment becomes durable.
fn seal_locked(shared: &WalShared, inner: &mut WalInner) -> io::Result<()> {
    if inner.dropping {
        return Err(io::Error::other("injected WAL write fault"));
    }
    let t0 = Instant::now();
    inner.file.sync_data()?;
    shared.fsyncs.fetch_add(1, Ordering::Relaxed);
    shared.seals.fetch_add(1, Ordering::Relaxed);
    if let Some(obs) = shared.obs.get() {
        obs.fsync_ns.record_duration(t0.elapsed());
    }
    let sealed_id = inner.seg_id;
    let sealed_records = inner.tail_records;
    let sealed_bytes = inner.tail_bytes;
    let next = inner.seg_id + 1;
    let path = seg_path(&shared.dir, next);
    let token = *shared.token.lock().unwrap();
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .read(true)
        .write(true)
        .open(&path)?;
    let len = write_segment_header(&mut file, &token, next)?;
    inner.sealed_records += inner.tail_records;
    inner.file = file;
    inner.seg_id = next;
    inner.tail_bytes = len;
    inner.tail_records = 0;
    inner.segments += 1;
    // The seal fsync covered every append so far.
    let mut sync = shared.sync.lock().unwrap();
    sync.synced = sync.appended;
    shared.cond.notify_all();
    drop(sync);
    if let Some(obs) = shared.obs.get() {
        if obs.events.enabled() {
            obs.events.record_span(
                Category::Wal,
                Severity::Info,
                "wal.seal",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                vec![
                    ("segment", FieldValue::U64(sealed_id)),
                    ("records", FieldValue::U64(sealed_records)),
                    ("bytes", FieldValue::U64(sealed_bytes)),
                ],
            );
        }
    }
    Ok(())
}

/// The `Durability::Group` flusher: wait for work, batch appends for the
/// policy's window, fsync once for all of them.
fn spawn_flusher(shared: Arc<WalShared>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        let mut dirty = shared.dirty.lock().unwrap();
        while !*dirty && !shared.shutdown.load(Ordering::SeqCst) {
            let (guard, _) = shared
                .flush_cond
                .wait_timeout(dirty, Duration::from_millis(100))
                .unwrap();
            dirty = guard;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Final best-effort flush so Group loses nothing on clean drop.
            if *dirty {
                let _ = flush_group(&shared);
            }
            return;
        }
        *dirty = false;
        drop(dirty);
        // Batching window: let concurrent appends pile up behind one fsync.
        let wait = match shared.inner.lock().unwrap().durability {
            Durability::Group { max_wait } => max_wait,
            _ => Duration::ZERO,
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        let _ = flush_group(&shared);
    })
}

fn flush_group(shared: &WalShared) -> io::Result<()> {
    let t0 = Instant::now();
    let covered = fsync_tail(shared)?;
    let mut sync = shared.sync.lock().unwrap();
    let batched = covered.saturating_sub(sync.synced);
    sync.synced = sync.synced.max(covered);
    shared.cond.notify_all();
    drop(sync);
    if batched > 0 {
        if let Some(obs) = shared.obs.get() {
            // One background fsync acknowledged `batched` queued commits:
            // the Group-mode amortization the counters make observable.
            obs.group_commits.inc();
            obs.group_queue_depth.set(batched as i64);
            if obs.events.enabled() {
                obs.events.record_span(
                    Category::Wal,
                    Severity::Debug,
                    "wal.group_flush",
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    vec![("batched", FieldValue::U64(batched))],
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const TOKEN: BaseToken = [7u8; TOKEN_LEN];

    #[test]
    fn append_and_recover_round_trip() {
        let dir = temp_dir("round-trip");
        {
            let (wal, replayed) =
                Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
            assert!(replayed.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            assert!(!wal.is_empty());
        }
        let (wal, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(!replayed[0].sealed);
        assert_eq!(replayed[0].records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(wal.stats().replayed, 2);
        // Appends continue after the recovered tail.
        wal.append(b"three").unwrap();
        drop(wal);
        let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        assert_eq!(replayed[0].records.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn token_mismatch_discards_the_log() {
        let dir = temp_dir("token");
        {
            let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
            wal.append(b"stale").unwrap();
        }
        let other = [9u8; TOKEN_LEN];
        let (wal, replayed) = Wal::recover(&dir, Some(other), Durability::Sync, 1 << 20).unwrap();
        assert!(replayed.is_empty());
        assert!(wal.is_empty());
        drop(wal);
        // No token at all (image gone) wipes too.
        let (_, replayed) = Wal::recover(&dir, None, Durability::Sync, 1 << 20).unwrap();
        assert!(replayed.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealing_splits_segments_and_recovery_reports_them() {
        let dir = temp_dir("seal");
        {
            // Tiny threshold: every record seals its segment.
            let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1).unwrap();
            assert!(wal.append(b"a").unwrap().sealed);
            assert!(wal.append(b"b").unwrap().sealed);
            let stats = wal.stats();
            assert_eq!(stats.seals, 2);
            assert_eq!(stats.segments, 3, "two sealed plus the fresh tail");
        }
        let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1).unwrap();
        let shapes: Vec<(bool, usize)> = replayed
            .iter()
            .map(|s| (s.sealed, s.records.len()))
            .collect();
        assert_eq!(shapes, vec![(true, 1), (true, 1), (false, 0)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_valid_prefix() {
        let dir = temp_dir("torn");
        {
            let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
            wal.append(b"keep-me").unwrap();
        }
        // Simulate a crash mid-append: garbage frame bytes at the tail.
        let seg = seg_path(&dir, 1);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAB; 7]).unwrap();
        drop(f);
        let before = fs::metadata(&seg).unwrap().len();
        let (wal, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        assert_eq!(replayed[0].records, vec![b"keep-me".to_vec()]);
        assert!(fs::metadata(&seg).unwrap().len() < before);
        // The truncated tail accepts new appends cleanly.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        assert_eq!(
            replayed[0].records,
            vec![b"keep-me".to_vec(), b"after".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_sealed_segment_drops_later_segments() {
        let dir = temp_dir("torn-sealed");
        {
            let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1).unwrap();
            wal.append(b"first").unwrap(); // seals segment 1
            wal.append(b"second").unwrap(); // seals segment 2
        }
        // Corrupt the first sealed segment's record payload.
        let seg = seg_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1).unwrap();
        // Prefix semantics: nothing valid in segment 1 ⇒ nothing later
        // survives either.
        let total: usize = replayed.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, 0);
        assert!(!seg_path(&dir, 2).exists(), "later segments wiped");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebase_empties_the_log_under_a_new_token() {
        let dir = temp_dir("rebase");
        let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        let fresh = [3u8; TOKEN_LEN];
        wal.rebase(fresh).unwrap();
        assert!(wal.is_empty());
        wal.append(b"c").unwrap();
        drop(wal);
        let (_, replayed) = Wal::recover(&dir, Some(fresh), Durability::Sync, 1 << 20).unwrap();
        let all: Vec<Vec<u8>> = replayed.into_iter().flat_map(|s| s.records).collect();
        assert_eq!(all, vec![b"c".to_vec()], "only the post-rebase record");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_shares_fsyncs_across_concurrent_writers() {
        let dir = temp_dir("group");
        let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        let wal = Arc::new(wal);
        let threads = 8;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = wal.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        wal.append(format!("t{t}-r{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.appends, (threads * per_thread) as u64);
        assert!(
            stats.fsyncs <= stats.appends,
            "group commit never fsyncs more than once per append"
        );
        drop(wal);
        let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
        let total: usize = replayed.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, threads * per_thread, "every synced record survives");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_durability_acknowledges_before_fsync_and_flushes_in_background() {
        let dir = temp_dir("group-bg");
        let (wal, _) = Wal::recover(
            &dir,
            Some(TOKEN),
            Durability::Group {
                max_wait: Duration::from_millis(5),
            },
            1 << 20,
        )
        .unwrap();
        for i in 0..10 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let stats = wal.stats();
        assert!(stats.fsyncs >= 1);
        assert!(
            stats.fsyncs < stats.appends,
            "batched: fewer fsyncs ({}) than appends ({})",
            stats.fsyncs,
            stats.appends
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injection_mirrors_faultfile_semantics() {
        for kind in [
            FaultKind::Error,
            FaultKind::Torn { keep: 3 },
            FaultKind::Truncate,
        ] {
            let dir = temp_dir(&format!("fault-{kind:?}").replace([' ', '{', '}', ':'], ""));
            let (wal, _) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
            wal.append(b"before").unwrap();
            wal.set_fault(Some(FaultPlan::new(0, kind)));
            assert!(wal.append(b"doomed").is_err(), "{kind:?} must surface");
            drop(wal);
            let (_, replayed) = Wal::recover(&dir, Some(TOKEN), Durability::Sync, 1 << 20).unwrap();
            assert_eq!(
                replayed[0].records,
                vec![b"before".to_vec()],
                "{kind:?}: only the pre-fault record survives"
            );
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn db_token_changes_with_the_file_and_handles_absence() {
        let dir = temp_dir("token-fn");
        fs::create_dir_all(&dir).unwrap();
        let f = dir.join("img");
        assert!(db_token(&f).unwrap().is_none());
        fs::write(&f, b"first image bytes").unwrap();
        let a = db_token(&f).unwrap().unwrap();
        fs::write(&f, b"second image bytes!").unwrap();
        let b = db_token(&f).unwrap().unwrap();
        assert_ne!(a, b);
        fs::remove_dir_all(&dir).ok();
    }
}
