//! Page identifiers and little-endian in-page codecs.

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within one storage backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in a file backend.
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// Reads a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Writes a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

/// Writes a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Reads a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Writes a `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codecs_round_trip() {
        let mut b = vec![0u8; 32];
        put_u16(&mut b, 0, 0xBEEF);
        put_u32(&mut b, 4, 0xDEADBEEF);
        put_u64(&mut b, 8, u64::MAX - 7);
        assert_eq!(get_u16(&b, 0), 0xBEEF);
        assert_eq!(get_u32(&b, 4), 0xDEADBEEF);
        assert_eq!(get_u64(&b, 8), u64::MAX - 7);
    }

    #[test]
    fn page_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
    }
}
