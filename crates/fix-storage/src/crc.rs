//! CRC-32 (IEEE 802.3, the LevelDB/zlib polynomial) for on-disk frame
//! checksums.
//!
//! Hand-rolled because the workspace is dependency-free: a 256-entry
//! table built at compile time, processed a byte at a time. Throughput is
//! irrelevant here — persistence checksums are computed once per save or
//! load, never on a query path.

/// Streaming CRC-32 state.
///
/// ```
/// use fix_storage::Crc32;
/// let mut c = Crc32::new();
/// c.update(b"1234");
/// c.update(b"56789");
/// assert_eq!(c.finalize(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The checksum of everything fed so far (does not consume the state;
    /// further updates continue from the same position).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_incremental() {
        assert_eq!(crc32(b""), 0);
        let mut c = Crc32::new();
        c.update(b"hello ");
        c.update(b"world");
        assert_eq!(c.finalize(), crc32(b"hello world"));
    }

    #[test]
    fn detects_single_byte_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut m = base.clone();
                m[i] ^= flip;
                assert_ne!(crc32(&m), want, "flip {flip:#x} at {i} undetected");
            }
        }
    }
}
