//! Heap files: variable-length records on slotted pages.
//!
//! Primary storage for serialized documents/subtrees. Records larger than
//! a page spill into a chain of overflow pages. Record ids are stable
//! (`(page, slot)`), which is exactly what the unclustered FIX index stores
//! as its B-tree values.

use crate::page::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64, PageId, PAGE_SIZE};
use crate::pool::{PageSpace, StorageError};

/// Page header: `u16 slot_count`, `u16 data_start` (data grows downward).
const HDR: usize = 4;
/// Per-slot entry: `u16 offset`, `u16 len`.
const SLOT: usize = 4;
/// Slot length sentinel marking an overflow record.
const OVERFLOW: u16 = u16::MAX;
/// Overflow slot payload: `u64 first_page`, `u32 total_len`.
const OVERFLOW_PAYLOAD: usize = 12;
/// Overflow page header: `u64 next_page` (`u64::MAX` = end of chain).
const OV_HDR: usize = 8;

/// Stable address of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// The slotted page holding the record (or its overflow stub).
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecordId {
    /// Packs into a `u64` (for storing as a B-tree value / storage ptr).
    pub fn to_u64(self) -> u64 {
        (self.page.0 << 16) | self.slot as u64
    }

    /// Unpacks from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: PageId(v >> 16),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// The durable shape of a heap: everything [`HeapFile::attach`] needs to
/// reconstruct one over an existing page region (the persistence layer
/// serializes this next to the pages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapDirectory {
    /// Slotted data pages, in allocation order (scan order).
    pub data_pages: Vec<PageId>,
    /// Total records appended.
    pub records: u64,
    /// Overflow pages allocated.
    pub overflow_pages: u64,
}

/// An append-only heap of variable-length records.
pub struct HeapFile {
    pool: PageSpace,
    /// Slotted data pages, in allocation order (scan order).
    data_pages: Vec<PageId>,
    /// Total records appended.
    records: u64,
    /// Overflow pages allocated (size accounting).
    overflow_pages: u64,
}

impl HeapFile {
    /// Creates an empty heap on `pool`.
    pub fn new(pool: PageSpace) -> Self {
        Self {
            pool,
            data_pages: Vec::new(),
            records: 0,
            overflow_pages: 0,
        }
    }

    /// Reconstructs a heap over pages that already exist in `pool`'s
    /// backend (the paged-open path; no page is read until a record is).
    pub fn attach(pool: PageSpace, dir: HeapDirectory) -> Self {
        Self {
            pool,
            data_pages: dir.data_pages,
            records: dir.records,
            overflow_pages: dir.overflow_pages,
        }
    }

    /// The heap's durable shape (see [`HeapDirectory`]).
    pub fn directory(&self) -> HeapDirectory {
        HeapDirectory {
            data_pages: self.data_pages.clone(),
            records: self.records,
            overflow_pages: self.overflow_pages,
        }
    }

    /// Number of records appended.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True if no record was appended.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Total pages owned (data + overflow) — index/storage size accounting.
    pub fn page_count(&self) -> u64 {
        self.data_pages.len() as u64 + self.overflow_pages
    }

    /// Size in bytes (page-granular).
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    fn fresh_page(&mut self) -> PageId {
        let id = self.pool.allocate();
        self.pool.with_page_mut(id, |b| {
            put_u16(b, 0, 0);
            put_u16(b, 2, PAGE_SIZE as u16);
        });
        self.data_pages.push(id);
        id
    }

    /// Appends a record, returning its id.
    pub fn append(&mut self, bytes: &[u8]) -> RecordId {
        self.records += 1;
        let inline_max = PAGE_SIZE - HDR - SLOT;
        if bytes.len() > inline_max {
            return self.append_overflow(bytes);
        }
        let need = bytes.len() + SLOT;
        let page = match self.data_pages.last().copied() {
            Some(p) if self.free_space(p) >= need => p,
            _ => self.fresh_page(),
        };
        let slot = self.pool.with_page_mut(page, |b| {
            let slot_count = get_u16(b, 0);
            let data_start = get_u16(b, 2) as usize;
            let off = data_start - bytes.len();
            b[off..data_start].copy_from_slice(bytes);
            let slot_off = HDR + slot_count as usize * SLOT;
            put_u16(b, slot_off, off as u16);
            put_u16(b, slot_off + 2, bytes.len() as u16);
            put_u16(b, 0, slot_count + 1);
            put_u16(b, 2, off as u16);
            slot_count
        });
        RecordId { page, slot }
    }

    fn append_overflow(&mut self, bytes: &[u8]) -> RecordId {
        // Write the chain first.
        let chunk = PAGE_SIZE - OV_HDR;
        let n_pages = bytes.len().div_ceil(chunk);
        let pages: Vec<PageId> = (0..n_pages).map(|_| self.pool.allocate()).collect();
        self.overflow_pages += n_pages as u64;
        for (i, &pid) in pages.iter().enumerate() {
            let next = pages.get(i + 1).map(|p| p.0).unwrap_or(u64::MAX);
            let start = i * chunk;
            let end = (start + chunk).min(bytes.len());
            self.pool.with_page_mut(pid, |b| {
                put_u64(b, 0, next);
                b[OV_HDR..OV_HDR + (end - start)].copy_from_slice(&bytes[start..end]);
            });
        }
        // Then the stub slot.
        let need = OVERFLOW_PAYLOAD + SLOT;
        let page = match self.data_pages.last().copied() {
            Some(p) if self.free_space(p) >= need => p,
            _ => self.fresh_page(),
        };
        let first = pages[0].0;
        let total = bytes.len() as u32;
        let slot = self.pool.with_page_mut(page, |b| {
            let slot_count = get_u16(b, 0);
            let data_start = get_u16(b, 2) as usize;
            let off = data_start - OVERFLOW_PAYLOAD;
            put_u64(b, off, first);
            put_u32(b, off + 8, total);
            let slot_off = HDR + slot_count as usize * SLOT;
            put_u16(b, slot_off, off as u16);
            put_u16(b, slot_off + 2, OVERFLOW);
            put_u16(b, 0, slot_count + 1);
            put_u16(b, 2, off as u16);
            slot_count
        });
        RecordId { page, slot }
    }

    fn free_space(&self, page: PageId) -> usize {
        self.pool.with_page(page, |b| {
            let slot_count = get_u16(b, 0) as usize;
            let data_start = get_u16(b, 2) as usize;
            data_start.saturating_sub(HDR + slot_count * SLOT)
        })
    }

    /// Fetches a record. The slot page is pinned once: slot lookup and
    /// inline data copy happen under a single page guard, and only
    /// overflow records touch further pages (one pin per chain hop).
    ///
    /// # Panics
    /// Panics on a dangling record id or an unreadable/corrupt page. Use
    /// [`HeapFile::try_get`] where torn pages must be survivable.
    pub fn get(&self, id: RecordId) -> Vec<u8> {
        self.try_get(id).unwrap_or_else(|e| {
            panic!("invariant: heap record {id:?} must be readable on this path: {e}")
        })
    }

    /// Fetches a record, surfacing page-level failures (out-of-range ids,
    /// CRC mismatches from a verified attach, I/O errors) as
    /// [`StorageError`] instead of panicking — the salvage path reads every
    /// record this way so one torn page loses one record, not the file.
    pub fn try_get(&self, id: RecordId) -> Result<Vec<u8>, StorageError> {
        let corrupt = |detail: String| StorageError::Corrupt {
            page: id.page,
            detail,
        };
        let overflow = {
            let guard = self.pool.try_pin(id.page)?;
            let b = guard.data();
            let slot_count = get_u16(&b, 0);
            if id.slot >= slot_count {
                return Err(corrupt(format!(
                    "dangling record id (slot {} of {slot_count})",
                    id.slot
                )));
            }
            let slot_off = HDR + id.slot as usize * SLOT;
            let off = get_u16(&b, slot_off) as usize;
            let len = get_u16(&b, slot_off + 2);
            if len == OVERFLOW {
                if off + OVERFLOW_PAYLOAD > PAGE_SIZE {
                    return Err(corrupt("overflow stub out of bounds".into()));
                }
                (get_u64(&b, off), get_u32(&b, off + 8))
            } else {
                if off + len as usize > PAGE_SIZE {
                    return Err(corrupt("record slot out of bounds".into()));
                }
                return Ok(b[off..off + len as usize].to_vec());
            }
        };
        let (first, total) = overflow;
        let mut out = Vec::with_capacity(total as usize);
        let mut page = first;
        while page != u64::MAX && out.len() < total as usize {
            let remaining = total as usize - out.len();
            let take = remaining.min(PAGE_SIZE - OV_HDR);
            let guard = self.pool.try_pin(PageId(page))?;
            let b = guard.data();
            out.extend_from_slice(&b[OV_HDR..OV_HDR + take]);
            page = get_u64(&b, 0);
        }
        if out.len() != total as usize {
            return Err(corrupt(format!(
                "truncated overflow chain ({} of {total} bytes)",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Scans all records in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = (RecordId, Vec<u8>)> + '_ {
        self.data_pages.iter().flat_map(move |&page| {
            let slots = self.pool.with_page(page, |b| get_u16(b, 0));
            (0..slots).map(move |slot| {
                let id = RecordId { page, slot };
                (id, self.get(id))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapFile {
        HeapFile::new(PageSpace::in_memory(16))
    }

    #[test]
    fn append_and_get() {
        let mut h = heap();
        let a = h.append(b"hello");
        let b = h.append(b"world!");
        assert_eq!(h.get(a), b"hello");
        assert_eq!(h.get(b), b"world!");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn record_id_packs() {
        let id = RecordId {
            page: PageId(123456),
            slot: 42,
        };
        assert_eq!(RecordId::from_u64(id.to_u64()), id);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut h = heap();
        let payload = vec![7u8; 1000];
        let ids: Vec<_> = (0..20).map(|_| h.append(&payload)).collect();
        assert!(h.page_count() >= 3);
        for id in ids {
            assert_eq!(h.get(id).len(), 1000);
        }
    }

    #[test]
    fn overflow_records_round_trip() {
        let mut h = heap();
        let big: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        let small = h.append(b"tiny");
        let ov = h.append(&big);
        let small2 = h.append(b"post");
        assert_eq!(h.get(ov), big);
        assert_eq!(h.get(small), b"tiny");
        assert_eq!(h.get(small2), b"post");
        assert!(h.page_count() > 6);
    }

    #[test]
    fn exact_page_boundary_overflow() {
        let mut h = heap();
        let exactly_chunk = vec![1u8; PAGE_SIZE - OV_HDR];
        let id = h.append(&exactly_chunk);
        assert_eq!(h.get(id), exactly_chunk);
        let two_chunks = vec![2u8; 2 * (PAGE_SIZE - OV_HDR)];
        let id2 = h.append(&two_chunks);
        assert_eq!(h.get(id2), two_chunks);
    }

    #[test]
    fn scan_yields_insertion_order() {
        let mut h = heap();
        let payload: Vec<Vec<u8>> = (0..100u32)
            .map(|i| i.to_le_bytes().repeat(i as usize % 7 + 1))
            .collect();
        let ids: Vec<_> = payload.iter().map(|p| h.append(p)).collect();
        let scanned: Vec<_> = h.scan().collect();
        assert_eq!(scanned.len(), 100);
        for ((id, data), (want_id, want)) in scanned.iter().zip(ids.iter().zip(&payload)) {
            assert_eq!(id, want_id);
            assert_eq!(data, want);
        }
    }

    #[test]
    fn empty_record_is_fine() {
        let mut h = heap();
        let id = h.append(b"");
        assert_eq!(h.get(id), b"");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use crate::pool::PageSpace;

    #[test]
    fn record_exactly_at_inline_maximum() {
        let mut h = HeapFile::new(PageSpace::in_memory(8));
        let max_inline = PAGE_SIZE - 4 /*HDR*/ - 4 /*SLOT*/;
        let payload = vec![9u8; max_inline];
        let id = h.append(&payload);
        assert_eq!(h.get(id), payload);
        // One byte more must take the overflow path and still round-trip.
        let over = vec![7u8; max_inline + 1];
        let id2 = h.append(&over);
        assert_eq!(h.get(id2), over);
    }

    #[test]
    fn tiny_pool_still_round_trips_overflow_chains() {
        // A single-frame pool forces every chain hop to evict.
        let mut h = HeapFile::new(PageSpace::in_memory(1));
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 255) as u8).collect();
        let small = h.append(b"before");
        let id = h.append(&big);
        let after = h.append(b"after");
        assert_eq!(h.get(id), big);
        assert_eq!(h.get(small), b"before");
        assert_eq!(h.get(after), b"after");
    }

    #[test]
    fn interleaved_small_and_overflow_records() {
        let mut h = HeapFile::new(PageSpace::in_memory(4));
        let mut ids = Vec::new();
        for i in 0..30usize {
            let len = if i % 5 == 4 { 20_000 } else { i * 17 % 900 };
            let payload: Vec<u8> = (0..len).map(|j| (i * 31 + j) as u8).collect();
            ids.push((h.append(&payload), payload));
        }
        for (id, want) in ids {
            assert_eq!(h.get(id), want);
        }
    }
}
