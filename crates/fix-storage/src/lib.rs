//! Paged storage substrate: the stand-in for Berkeley DB's storage layer.
//!
//! The paper implements FIX on Berkeley DB B-trees over a conventional
//! paged store. This crate reproduces that substrate from scratch:
//!
//! * [`StorageBackend`] — fixed-size page I/O over memory or a file, with
//!   structured [`StorageError`]s instead of panics.
//! * [`BufferPool`] / [`PageSpace`] — a shared LRU page cache with pin
//!   counts ([`PageGuard`]), dirty write-back, optional per-page CRC32
//!   verification, and per-tenant I/O counters. Several databases can
//!   attach to one pool and compete for one frame budget. The counters are
//!   load-bearing: the experimental section's clustered-vs-unclustered
//!   comparison is fundamentally an argument about sequential vs random
//!   page I/O, and the benches report these counts.
//! * [`HeapFile`] — variable-length records on slotted pages; primary
//!   storage for documents and the clustered index's reordered copies.
//! * [`Crc32`] / [`crc32`] — the IEEE checksum used by the persistence
//!   layer's framed on-disk format (DESIGN §12).
//! * [`FaultFile`] — deterministic write-fault injection (failpoints) for
//!   crash-safety testing of the save path.
//! * [`Wal`] — a segmented, CRC-framed write-ahead log with group-commit
//!   fsync batching and torn-tail recovery, pairing each log to its base
//!   image via [`db_token`] (DESIGN §15).

pub mod crc;
pub mod fault;
pub mod heap;
pub mod page;
pub mod pool;
pub mod wal;

pub use crc::{crc32, Crc32};
pub use fault::{
    disk_full_error, is_disk_full, read_boundaries, set_read_fault, FaultFile, FaultKind,
    FaultPlan, ReadFaultKind, ReadFaultPlan,
};
pub use heap::{HeapDirectory, HeapFile, RecordId};
pub use page::{PageId, PAGE_SIZE};
pub use pool::{
    BufferPool, FileBackend, IoStats, MemBackend, PageGuard, PageRef, PageRefMut, PageSpace,
    PoolStats, StorageBackend, StorageError,
};
pub use wal::{
    db_token, wal_dir, AppendOutcome, BaseToken, Durability, ReplayedSegment, Wal, WalStats,
};
