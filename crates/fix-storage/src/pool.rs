//! Storage backends, the shared buffer pool, and pinned page guards.
//!
//! The pool is the single point every page access goes through. It is
//! *shared*: one [`BufferPool`] can cache pages for several independent
//! page spaces at once (several open databases, or one database's index
//! plus its document heap), each attached as a tenant with its own
//! [`StorageBackend`] and its own [`IoStats`]. The global frame budget —
//! [`BufferPool::shared`]'s `capacity` — bounds resident pages across all
//! tenants, which is what makes a multi-tenant deployment's memory
//! footprint a configuration knob instead of a function of data size.
//!
//! Access is guard-based: [`PageSpace::pin`] returns a [`PageGuard`] that
//! holds a pin count on the frame for as long as the caller keeps it.
//! Pinned frames are never evicted; everything else is fair game for the
//! LRU sweep. The closure helpers [`PageSpace::with_page`] /
//! [`PageSpace::with_page_mut`] are thin wrappers that pin for exactly
//! the closure's duration.
//!
//! A tenant attached with [`BufferPool::attach_verified`] carries a
//! per-page CRC32 table; every physical read is checked against it, so a
//! torn or bit-flipped page surfaces as [`StorageError::Corrupt`] at the
//! page that was actually damaged instead of as silently wrong bytes.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use fix_obs::event::{Category, EventRecorder, FieldValue, Severity};
use parking_lot::Mutex;

use crate::crc::crc32;
use crate::page::{PageId, PAGE_SIZE};

/// A structured storage failure. The pool's panicking accessors
/// (`with_page`, `pin`) treat any of these as fail-stop; the `try_`
/// variants surface them to callers that can isolate the damage (the
/// verifier, salvage, and the paged open path).
#[derive(Debug)]
pub enum StorageError {
    /// A page id outside the backend's allocated range.
    OutOfRange {
        /// The requested page.
        page: PageId,
        /// Number of pages the backend actually holds.
        pages: u64,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Page contents failed checksum verification.
    Corrupt {
        /// The damaged page.
        page: PageId,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfRange { page, pages } => {
                write!(f, "page {} out of range (backend has {pages})", page.0)
            }
            StorageError::Io(e) => write!(f, "page I/O error: {e}"),
            StorageError::Corrupt { page, detail } => {
                write!(f, "page {} corrupt: {detail}", page.0)
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Fixed-size page I/O.
pub trait StorageBackend: Send {
    /// Reads page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), StorageError>;
    /// Writes `buf` to page `id`.
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<(), StorageError>;
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> Result<PageId, StorageError>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// In-memory backend (the default for tests and experiments; the buffer
/// pool still simulates the I/O pattern, which is what the metrics need).
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: Vec<Box<[u8]>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds-checks `id`, returning the structured error the
    /// [`StorageBackend`] contract requires for unallocated pages.
    fn check(&self, id: PageId) -> Result<usize, StorageError> {
        let idx = id.0 as usize;
        if idx >= self.pages.len() {
            return Err(StorageError::OutOfRange {
                page: id,
                pages: self.pages.len() as u64,
            });
        }
        Ok(idx)
    }
}

impl StorageBackend for MemBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), StorageError> {
        let idx = self.check(id)?;
        buf.copy_from_slice(&self.pages[idx]);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<(), StorageError> {
        let idx = self.check(id)?;
        self.pages[idx].copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// File-backed pages. Page 0 lives at byte `base` in the file, which lets
/// the v4 paged database format reserve a superblock (and lets the page
/// region coexist with a metadata tail after it).
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    base: u64,
    pages: u64,
}

impl FileBackend {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::create_at(path, 0)
    }

    /// Creates (truncating) a page file whose page 0 starts at byte
    /// `base`.
    pub fn create_at(path: &Path, base: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            base,
            pages: 0,
        })
    }

    /// Opens an existing page file (whole file = page region).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            base: 0,
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Opens an existing file whose page region is `pages` pages starting
    /// at byte `base` (read-only page access; the file may hold other data
    /// outside the region).
    pub fn open_at(path: &Path, base: u64, pages: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).open(path)?;
        Ok(Self { file, base, pages })
    }

    fn check(&self, id: PageId) -> Result<u64, StorageError> {
        if id.0 >= self.pages {
            return Err(StorageError::OutOfRange {
                page: id,
                pages: self.pages,
            });
        }
        Ok(self.base + id.offset())
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<(), StorageError> {
        let off = self.check(id)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        // One page fetch = one injectable read boundary (no-op unless a
        // test armed a plan via `fault::set_read_fault`).
        crate::fault::read_boundary(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<(), StorageError> {
        let off = self.check(id)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let id = PageId(self.pages);
        self.pages += 1;
        self.file.seek(SeekFrom::Start(self.base + id.offset()))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }
}

/// Per-tenant I/O and cache counters. `random_reads` counts cache-miss
/// reads whose page id is not the successor of the previously missed id —
/// the proxy for the random-vs-sequential distinction driving the
/// clustered/unclustered tradeoff (Section 4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (physical page reads).
    pub misses: u64,
    /// Physical page writes (evictions of dirty pages + flushes).
    pub writes: u64,
    /// Misses that were not sequential with the previous miss.
    pub random_reads: u64,
}

/// Pool-wide cache statistics, across all tenants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame budget (maximum unpinned-resident pages).
    pub capacity: usize,
    /// Pages currently resident in the pool.
    pub resident: usize,
    /// Resident pages currently pinned by live guards.
    pub pinned: usize,
    /// Cache hits across all tenants.
    pub hits: u64,
    /// Cache misses (physical reads) across all tenants.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (evictions + explicit flushes).
    pub flushes: u64,
    /// Physical reads rejected by per-page CRC verification.
    pub crc_failures: u64,
    /// Pages currently quarantined after a failed physical read.
    pub quarantined: usize,
}

impl PoolStats {
    /// Fraction of page accesses served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

impl fix_obs::Reportable for PoolStats {
    /// Sets the `fix_pool_*` gauges (levels — re-reporting overwrites
    /// with the latest snapshot).
    fn report(&self, registry: &fix_obs::MetricsRegistry) {
        registry
            .gauge("fix_pool_capacity_pages")
            .set(self.capacity as i64);
        registry
            .gauge("fix_pool_resident_pages")
            .set(self.resident as i64);
        registry
            .gauge("fix_pool_pinned_pages")
            .set(self.pinned as i64);
        registry.gauge("fix_pool_hits").set(self.hits as i64);
        registry.gauge("fix_pool_misses").set(self.misses as i64);
        registry
            .gauge("fix_pool_evictions")
            .set(self.evictions as i64);
        registry.gauge("fix_pool_flushes").set(self.flushes as i64);
        registry
            .gauge("fix_pool_crc_failures")
            .set(self.crc_failures as i64);
        registry
            .gauge(fix_obs::names::POOL_QUARANTINED)
            .set(self.quarantined as i64);
    }
}

/// One resident page. The cell is shared between the pool's frame table
/// and any outstanding [`PageGuard`]s; the pin count is what keeps the
/// eviction sweep away while guards are alive.
struct FrameCell {
    tenant: u32,
    page: PageId,
    data: RwLock<Box<[u8]>>,
    pins: AtomicU32,
    dirty: AtomicBool,
    tick: AtomicU64,
}

struct Tenant {
    backend: Box<dyn StorageBackend>,
    stats: IoStats,
    last_miss: Option<PageId>,
    /// Expected per-page CRC32s (verified attach); updated on write-back
    /// so the table tracks what is actually on the backend.
    crcs: Option<Vec<u32>>,
}

struct Inner {
    tenants: Vec<Tenant>,
    frames: HashMap<(u32, PageId), Arc<FrameCell>>,
    tick: u64,
    evictions: u64,
    flushes: u64,
    crc_failures: u64,
    /// Pages whose physical read failed (I/O error or CRC mismatch).
    /// Later pins fail fast with [`StorageError::Corrupt`] instead of
    /// re-reading, so one bad page degrades only the operations that
    /// touch it. Cleared per page by [`PageSpace::clear_quarantine`]
    /// after a repair rewrites the backing store.
    quarantined: HashSet<(u32, PageId)>,
}

/// A shared LRU buffer pool over one or more [`StorageBackend`]s.
///
/// Create with [`BufferPool::shared`], then [`attach`](BufferPool::attach)
/// each backend to get a [`PageSpace`] handle — the page-space is what the
/// B+-tree and heap files hold. Multiple databases attached to one pool
/// compete for the same frame budget.
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Flight recorder for evictions and CRC failures; empty until
    /// [`BufferPool::attach_events`].
    events: OnceLock<Arc<EventRecorder>>,
}

impl BufferPool {
    /// Creates a pool with room for `capacity` pages, ready for tenants.
    pub fn shared(capacity: usize) -> Arc<Self> {
        assert!(capacity >= 1, "pool needs at least one frame");
        Arc::new(Self {
            inner: Mutex::new(Inner {
                tenants: Vec::new(),
                frames: HashMap::new(),
                tick: 0,
                evictions: 0,
                flushes: 0,
                crc_failures: 0,
                quarantined: HashSet::new(),
            }),
            capacity,
            events: OnceLock::new(),
        })
    }

    /// Attaches a flight recorder: evictions are narrated at `Debug`, CRC
    /// failures at `Error` (the retained list keeps the latter past ring
    /// churn). Call once; later calls are ignored.
    pub fn attach_events(&self, events: Arc<EventRecorder>) {
        let _ = self.events.set(events);
    }

    /// Attaches `backend` as a new tenant and returns its page space.
    pub fn attach(self: &Arc<Self>, backend: Box<dyn StorageBackend>) -> PageSpace {
        self.attach_inner(backend, None)
    }

    /// Attaches `backend` with a per-page CRC32 table; every physical read
    /// of page `p` is verified against `page_crcs[p]` and surfaces
    /// [`StorageError::Corrupt`] on mismatch.
    pub fn attach_verified(
        self: &Arc<Self>,
        backend: Box<dyn StorageBackend>,
        page_crcs: Vec<u32>,
    ) -> PageSpace {
        self.attach_inner(backend, Some(page_crcs))
    }

    fn attach_inner(
        self: &Arc<Self>,
        backend: Box<dyn StorageBackend>,
        crcs: Option<Vec<u32>>,
    ) -> PageSpace {
        let mut inner = self.inner.lock();
        let tenant = inner.tenants.len() as u32;
        inner.tenants.push(Tenant {
            backend,
            stats: IoStats::default(),
            last_miss: None,
            crcs,
        });
        PageSpace {
            pool: Arc::clone(self),
            tenant,
        }
    }

    /// Pool-wide statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        let mut s = PoolStats {
            capacity: self.capacity,
            resident: inner.frames.len(),
            pinned: inner
                .frames
                .values()
                .filter(|f| f.pins.load(Ordering::Acquire) > 0)
                .count(),
            evictions: inner.evictions,
            flushes: inner.flushes,
            crc_failures: inner.crc_failures,
            quarantined: inner.quarantined.len(),
            ..PoolStats::default()
        };
        for t in &inner.tenants {
            s.hits += t.stats.hits;
            s.misses += t.stats.misses;
        }
        s
    }

    /// Writes every tenant's dirty pages back to its backend.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        let cells: Vec<Arc<FrameCell>> = inner.frames.values().map(Arc::clone).collect();
        for cell in cells {
            Self::write_back(&mut inner, &cell)?;
        }
        Ok(())
    }

    /// Writes `cell` back to its tenant's backend if dirty. Called with
    /// the inner lock held; safe because dirty data is only produced under
    /// a pin, and write-back targets are either unpinned (eviction) or
    /// quiesced by the caller (flush).
    fn write_back(inner: &mut Inner, cell: &FrameCell) -> Result<(), StorageError> {
        if !cell.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let data = cell.data.read().expect("page lock poisoned");
        let tenant = &mut inner.tenants[cell.tenant as usize];
        tenant.backend.write_page(cell.page, &data)?;
        tenant.stats.writes += 1;
        inner.flushes += 1;
        if let Some(crcs) = &mut tenant.crcs {
            if let Some(slot) = crcs.get_mut(cell.page.0 as usize) {
                *slot = crc32(&data);
            }
        }
        Ok(())
    }

    /// Evicts least-recently-used unpinned frames until the pool is below
    /// capacity (or nothing more is evictable — with every frame pinned
    /// the pool overcommits rather than deadlocking).
    fn make_room(&self, inner: &mut Inner) -> Result<(), StorageError> {
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .values()
                .filter(|f| f.pins.load(Ordering::Acquire) == 0)
                .min_by_key(|f| f.tick.load(Ordering::Acquire))
                .map(Arc::clone);
            let Some(victim) = victim else {
                return Ok(()); // everything pinned: overcommit
            };
            let dirty = victim.dirty.load(Ordering::Acquire);
            Self::write_back(inner, &victim)?;
            inner.frames.remove(&(victim.tenant, victim.page));
            inner.evictions += 1;
            if let Some(events) = self.events.get() {
                if events.enabled() {
                    events.record(
                        Category::Pool,
                        Severity::Debug,
                        "pool.evict",
                        vec![
                            ("tenant", FieldValue::U64(victim.tenant as u64)),
                            ("page", FieldValue::U64(victim.page.0)),
                            ("dirty", FieldValue::Bool(dirty)),
                        ],
                    );
                }
            }
        }
        Ok(())
    }

    /// Marks `(tenant, id)` quarantined after a failed physical read and
    /// narrates it. Called with the inner lock held.
    fn quarantine(&self, inner: &mut Inner, tenant: u32, id: PageId, reason: &str) {
        if !inner.quarantined.insert((tenant, id)) {
            return;
        }
        if let Some(events) = self.events.get() {
            events.record(
                Category::Pool,
                Severity::Error,
                "pool.quarantine",
                vec![
                    ("tenant", FieldValue::U64(tenant as u64)),
                    ("page", FieldValue::U64(id.0)),
                    ("reason", FieldValue::Str(reason.to_string())),
                ],
            );
        }
    }

    fn pin_impl(&self, tenant: u32, id: PageId) -> Result<Arc<FrameCell>, StorageError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(cell) = inner.frames.get(&(tenant, id)) {
            let cell = Arc::clone(cell);
            cell.tick.store(tick, Ordering::Release);
            cell.pins.fetch_add(1, Ordering::AcqRel);
            inner.tenants[tenant as usize].stats.hits += 1;
            return Ok(cell);
        }
        // A quarantined page fails fast: its last physical read failed,
        // and retrying would at best re-read the same damage. Only the
        // operations that touch this page degrade; everything else keeps
        // serving.
        if inner.quarantined.contains(&(tenant, id)) {
            return Err(StorageError::Corrupt {
                page: id,
                detail: "page is quarantined (failed a previous read)".into(),
            });
        }
        // Miss: account, make room, do the physical read.
        {
            let t = &mut inner.tenants[tenant as usize];
            t.stats.misses += 1;
            if t.last_miss.map(|p| PageId(p.0 + 1)) != Some(id) {
                t.stats.random_reads += 1;
            }
            t.last_miss = Some(id);
        }
        self.make_room(&mut inner)?;
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let crc_mismatch = {
            let t = &mut inner.tenants[tenant as usize];
            match t.backend.read_page(id, &mut buf) {
                Ok(()) => {}
                // An out-of-range id is a caller bug, not page damage —
                // quarantining it would mask the bug. I/O failures mean
                // the page itself could not be delivered: quarantine.
                Err(e @ StorageError::OutOfRange { .. }) => return Err(e),
                Err(e) => {
                    self.quarantine(&mut inner, tenant, id, "io_error");
                    return Err(e);
                }
            }
            match t.crcs.as_ref().and_then(|c| c.get(id.0 as usize)) {
                Some(&expect) if crc32(&buf) != expect => Some(expect),
                _ => None,
            }
        };
        if let Some(expect) = crc_mismatch {
            inner.crc_failures += 1;
            let got = crc32(&buf);
            if let Some(events) = self.events.get() {
                events.record(
                    Category::Pool,
                    Severity::Error,
                    "pool.crc_failure",
                    vec![
                        ("tenant", FieldValue::U64(tenant as u64)),
                        ("page", FieldValue::U64(id.0)),
                        ("stored_crc", FieldValue::U64(expect as u64)),
                        ("read_crc", FieldValue::U64(got as u64)),
                    ],
                );
            }
            self.quarantine(&mut inner, tenant, id, "crc_mismatch");
            return Err(StorageError::Corrupt {
                page: id,
                detail: format!("CRC mismatch (stored {expect:#010x}, got {got:#010x})"),
            });
        }
        let cell = Arc::new(FrameCell {
            tenant,
            page: id,
            data: RwLock::new(buf),
            pins: AtomicU32::new(1),
            dirty: AtomicBool::new(false),
            tick: AtomicU64::new(tick),
        });
        inner.frames.insert((tenant, id), Arc::clone(&cell));
        Ok(cell)
    }
}

/// One tenant's view of a shared [`BufferPool`]: a private page-id space
/// over its own [`StorageBackend`], competing with the pool's other
/// tenants for frames. Cloning the handle is cheap and shares the tenant.
#[derive(Clone)]
pub struct PageSpace {
    pool: Arc<BufferPool>,
    tenant: u32,
}

impl PageSpace {
    /// Convenience: a fresh single-tenant in-memory pool (tests and
    /// in-memory indexes).
    pub fn in_memory(capacity: usize) -> Self {
        BufferPool::shared(capacity).attach(Box::new(MemBackend::new()))
    }

    /// The shared pool this space lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Allocates a fresh zeroed page.
    ///
    /// # Panics
    /// Fail-stop on backend errors (e.g. the disk filling up mid-build);
    /// use [`PageSpace::try_allocate`] where the caller can surface the
    /// failure instead.
    pub fn allocate(&self) -> PageId {
        self.try_allocate()
            .expect("invariant: page allocation must succeed on this build path")
    }

    /// Allocates a fresh zeroed page, surfacing backend failures.
    pub fn try_allocate(&self) -> Result<PageId, StorageError> {
        let mut inner = self.pool.inner.lock();
        inner.tenants[self.tenant as usize].backend.allocate()
    }

    /// Number of pages in the underlying backend.
    pub fn num_pages(&self) -> u64 {
        self.pool.inner.lock().tenants[self.tenant as usize]
            .backend
            .num_pages()
    }

    /// Pins page `id` and returns its guard.
    ///
    /// # Panics
    /// Fail-stop on I/O errors or CRC verification failure; use
    /// [`PageSpace::try_pin`] to handle damage gracefully.
    pub fn pin(&self, id: PageId) -> PageGuard {
        self.try_pin(id).unwrap_or_else(|e| {
            panic!(
                "invariant: page {} must be readable on this path: {e}",
                id.0
            )
        })
    }

    /// Pins page `id`, surfacing backend and checksum failures.
    pub fn try_pin(&self, id: PageId) -> Result<PageGuard, StorageError> {
        let cell = self.pool.pin_impl(self.tenant, id)?;
        Ok(PageGuard { cell })
    }

    /// Runs `f` over an immutable view of page `id` (pinning it for the
    /// duration of the call).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let guard = self.pin(id);
        let data = guard.data();
        f(&data)
    }

    /// Runs `f` over a mutable view of page `id`, marking it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let guard = self.pin(id);
        let mut data = guard.data_mut();
        f(&mut data)
    }

    /// Writes this tenant's dirty pages back to its backend.
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.pool.inner.lock();
        let cells: Vec<Arc<FrameCell>> = inner
            .frames
            .values()
            .filter(|c| c.tenant == self.tenant)
            .map(Arc::clone)
            .collect();
        for cell in cells {
            BufferPool::write_back(&mut inner, &cell)?;
        }
        Ok(())
    }

    /// Snapshot of this tenant's I/O counters.
    pub fn stats(&self) -> IoStats {
        self.pool.inner.lock().tenants[self.tenant as usize].stats
    }

    /// Resets this tenant's I/O counters (between experiment phases).
    pub fn reset_stats(&self) {
        let mut inner = self.pool.inner.lock();
        let t = &mut inner.tenants[self.tenant as usize];
        t.stats = IoStats::default();
        t.last_miss = None;
    }

    /// Pool-wide statistics (all tenants).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// This tenant's quarantined pages, ascending (pages whose physical
    /// read failed; see [`PageSpace::clear_quarantine`]).
    pub fn quarantined(&self) -> Vec<PageId> {
        let inner = self.pool.inner.lock();
        let mut pages: Vec<PageId> = inner
            .quarantined
            .iter()
            .filter(|(t, _)| *t == self.tenant)
            .map(|&(_, p)| p)
            .collect();
        pages.sort_by_key(|p| p.0);
        pages
    }

    /// Lifts the quarantine on `id` after a repair has rewritten its
    /// backing bytes — the next pin re-reads from the backend. Returns
    /// whether the page was quarantined.
    pub fn clear_quarantine(&self, id: PageId) -> bool {
        self.pool
            .inner
            .lock()
            .quarantined
            .remove(&(self.tenant, id))
    }
}

/// A pinned page. The underlying frame cannot be evicted while the guard
/// lives; borrow the bytes with [`PageGuard::data`] /
/// [`PageGuard::data_mut`].
pub struct PageGuard {
    cell: Arc<FrameCell>,
}

impl fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageGuard")
            .field("page", &self.cell.page)
            .finish()
    }
}

impl PageGuard {
    /// The pinned page's id.
    pub fn page(&self) -> PageId {
        self.cell.page
    }

    /// Immutable view of the page bytes.
    pub fn data(&self) -> PageRef<'_> {
        PageRef(self.cell.data.read().expect("page lock poisoned"))
    }

    /// Mutable view of the page bytes; marks the page dirty.
    pub fn data_mut(&self) -> PageRefMut<'_> {
        let guard = self.cell.data.write().expect("page lock poisoned");
        self.cell.dirty.store(true, Ordering::Release);
        PageRefMut(guard)
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.cell.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Shared borrow of a pinned page's bytes.
pub struct PageRef<'a>(RwLockReadGuard<'a, Box<[u8]>>);

impl Deref for PageRef<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Mutable borrow of a pinned page's bytes.
pub struct PageRefMut<'a>(RwLockWriteGuard<'a, Box<[u8]>>);

impl Deref for PageRefMut<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for PageRefMut<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let pool = PageSpace::in_memory(4);
        let p = pool.allocate();
        pool.with_page_mut(p, |b| b[0..4].copy_from_slice(&[1, 2, 3, 4]));
        let v = pool.with_page(p, |b| b[0..4].to_vec());
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let pool = PageSpace::in_memory(2);
        let ids: Vec<_> = (0..5).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |b| b[0] = i as u8 + 10);
        }
        // All five pages were touched through a 2-frame pool; re-read them.
        for (i, &id) in ids.iter().enumerate() {
            let v = pool.with_page(id, |b| b[0]);
            assert_eq!(v, i as u8 + 10);
        }
        let s = pool.stats();
        assert!(s.misses >= 5, "{s:?}");
        assert!(s.writes >= 3, "{s:?}");
    }

    #[test]
    fn hits_are_counted() {
        let pool = PageSpace::in_memory(2);
        let p = pool.allocate();
        pool.with_page(p, |_| ());
        pool.with_page(p, |_| ());
        pool.with_page(p, |_| ());
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn sequential_vs_random_reads() {
        let pool = PageSpace::in_memory(1);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate()).collect();
        // Sequential scan: 4 misses, only the first is "random".
        for &id in &ids {
            pool.with_page(id, |_| ());
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.random_reads, 1, "{s:?}");
        pool.reset_stats();
        // Reverse scan: the last page is still cached (hit); every other
        // access misses, and every miss is random.
        for &id in ids.iter().rev() {
            pool.with_page(id, |_| ());
        }
        let s = pool.stats();
        assert_eq!(s.hits, 1, "{s:?}");
        assert_eq!(s.misses, 3, "{s:?}");
        assert_eq!(s.random_reads, 3, "{s:?}");
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("fix-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let pool = BufferPool::shared(2).attach(Box::new(FileBackend::create(&path).unwrap()));
            let p0 = pool.allocate();
            let p1 = pool.allocate();
            pool.with_page_mut(p0, |b| b[100] = 42);
            pool.with_page_mut(p1, |b| b[200] = 43);
            pool.flush().unwrap();
        }
        {
            let pool = BufferPool::shared(2).attach(Box::new(FileBackend::open(&path).unwrap()));
            assert_eq!(pool.num_pages(), 2);
            assert_eq!(pool.with_page(PageId(0), |b| b[100]), 42);
            assert_eq!(pool.with_page(PageId(1), |b| b[200]), 43);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let pool = PageSpace::in_memory(2);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        pool.with_page(a, |_| ());
        pool.with_page(b, |_| ());
        pool.with_page(a, |_| ()); // a is now hotter than b
        pool.with_page(c, |_| ()); // should evict b
        pool.reset_stats();
        pool.with_page(a, |_| ());
        assert_eq!(pool.stats().hits, 1, "a must still be cached");
        pool.with_page(b, |_| ());
        assert_eq!(pool.stats().misses, 1, "b must have been evicted");
    }

    #[test]
    fn mem_backend_rejects_out_of_range_pages() {
        let mut be = MemBackend::new();
        be.allocate().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        match be.read_page(PageId(7), &mut buf) {
            Err(StorageError::OutOfRange { page, pages }) => {
                assert_eq!(page, PageId(7));
                assert_eq!(pages, 1);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        assert!(matches!(
            be.write_page(PageId(1), &buf),
            Err(StorageError::OutOfRange { .. })
        ));
        // In-range access still works.
        be.write_page(PageId(0), &buf).unwrap();
        be.read_page(PageId(0), &mut buf).unwrap();
    }

    #[test]
    fn out_of_range_surfaces_through_try_pin() {
        let pool = PageSpace::in_memory(2);
        pool.allocate();
        let err = pool.try_pin(PageId(9)).unwrap_err();
        assert!(matches!(err, StorageError::OutOfRange { .. }), "{err}");
        // The failed fetch must not leave a frame behind.
        assert_eq!(pool.pool_stats().resident, 0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = PageSpace::in_memory(2);
        let ids: Vec<_> = (0..6).map(|_| pool.allocate()).collect();
        pool.with_page_mut(ids[0], |b| b[7] = 99);
        let guard = pool.pin(ids[0]);
        // Sweep everything else through the 2-frame pool.
        for &id in &ids[1..] {
            pool.with_page(id, |_| ());
        }
        // The pinned page was never evicted: reading it is a hit, and its
        // dirty byte is still in the frame.
        pool.reset_stats();
        assert_eq!(guard.data()[7], 99);
        assert_eq!(pool.with_page(ids[0], |b| b[7]), 99);
        assert_eq!(pool.stats().misses, 0, "pinned page must stay resident");
        drop(guard);
        // Unpinned now: pressure can evict it again.
        for &id in &ids[1..] {
            pool.with_page(id, |_| ());
        }
        pool.reset_stats();
        pool.with_page(ids[0], |b| assert_eq!(b[7], 99));
        assert_eq!(pool.stats().misses, 1, "unpinned page is evictable");
    }

    #[test]
    fn eviction_order_is_lru_among_unpinned() {
        let pool = PageSpace::in_memory(3);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        let d = pool.allocate();
        pool.with_page(a, |_| ());
        pool.with_page(b, |_| ());
        pool.with_page(c, |_| ());
        // LRU order is now a < b < c. Pin `a` so the sweep must pick `b`.
        let guard = pool.pin(a);
        pool.with_page(d, |_| ()); // evicts b, not pinned a
        drop(guard);
        pool.reset_stats();
        pool.with_page(a, |_| ());
        pool.with_page(c, |_| ());
        assert_eq!(pool.stats().hits, 2, "a and c must still be resident");
        pool.with_page(b, |_| ());
        assert_eq!(pool.stats().misses, 1, "b was the eviction victim");
    }

    #[test]
    fn pool_stats_track_residency_and_pins() {
        let pool = PageSpace::in_memory(4);
        let ids: Vec<_> = (0..3).map(|_| pool.allocate()).collect();
        for &id in &ids {
            pool.with_page(id, |_| ());
        }
        let s = pool.pool_stats();
        assert_eq!(s.capacity, 4);
        assert_eq!(s.resident, 3);
        assert_eq!(s.pinned, 0);
        let g0 = pool.pin(ids[0]);
        let g1 = pool.pin(ids[1]);
        assert_eq!(pool.pool_stats().pinned, 2);
        drop((g0, g1));
        assert_eq!(pool.pool_stats().pinned, 0);
        assert_eq!(s.misses, 3);
        assert!(s.hit_rate() < 1.0);
    }

    #[test]
    fn two_tenants_share_one_pool() {
        let pool = BufferPool::shared(4);
        let a = pool.attach(Box::new(MemBackend::new()));
        let b = pool.attach(Box::new(MemBackend::new()));
        let pa = a.allocate();
        let pb = b.allocate();
        // Same page id, different tenants: the frames must not alias.
        assert_eq!(pa, pb);
        a.with_page_mut(pa, |buf| buf[0] = 1);
        b.with_page_mut(pb, |buf| buf[0] = 2);
        assert_eq!(a.with_page(pa, |buf| buf[0]), 1);
        assert_eq!(b.with_page(pb, |buf| buf[0]), 2);
        // Both tenants' pages count against one budget.
        assert_eq!(pool.stats().resident, 2);
        // Per-tenant counters stay separate.
        assert_eq!(a.stats().misses, 1);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn shared_pool_capacity_bounds_both_tenants() {
        let pool = BufferPool::shared(2);
        let a = pool.attach(Box::new(MemBackend::new()));
        let b = pool.attach(Box::new(MemBackend::new()));
        for _ in 0..4 {
            a.allocate();
            b.allocate();
        }
        for i in 0..4u64 {
            a.with_page(PageId(i), |_| ());
            b.with_page(PageId(i), |_| ());
        }
        let s = pool.stats();
        assert!(s.resident <= 2, "{s:?}");
        assert!(s.evictions >= 6, "{s:?}");
    }

    #[test]
    fn verified_attach_rejects_corrupt_pages() {
        let dir = std::env::temp_dir().join(format!("fix-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let mut crcs = Vec::new();
        {
            let pool = BufferPool::shared(4).attach(Box::new(FileBackend::create(&path).unwrap()));
            for i in 0..3u8 {
                let p = pool.allocate();
                pool.with_page_mut(p, |b| b[0] = i + 1);
            }
            pool.flush().unwrap();
            for i in 0..3u64 {
                crcs.push(pool.with_page(PageId(i), crc32));
            }
        }
        // Flip a byte in page 1 on disk.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 17)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let pool = BufferPool::shared(4)
            .attach_verified(Box::new(FileBackend::open(&path).unwrap()), crcs);
        assert_eq!(pool.with_page(PageId(0), |b| b[0]), 1);
        assert_eq!(pool.with_page(PageId(2), |b| b[0]), 3);
        let err = pool.try_pin(PageId(1)).unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { page, .. } if page == PageId(1)),
            "{err}"
        );
        assert_eq!(pool.pool_stats().crc_failures, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_failure_quarantines_until_cleared() {
        let dir = std::env::temp_dir().join(format!("fix-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let mut crcs = Vec::new();
        {
            let pool = BufferPool::shared(4).attach(Box::new(FileBackend::create(&path).unwrap()));
            for i in 0..2u8 {
                let p = pool.allocate();
                pool.with_page_mut(p, |b| b[0] = i + 1);
            }
            pool.flush().unwrap();
            for i in 0..2u64 {
                crcs.push(pool.with_page(PageId(i), crc32));
            }
        }
        // Damage page 1 on disk.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 9)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let pool = BufferPool::shared(4)
            .attach_verified(Box::new(FileBackend::open(&path).unwrap()), crcs.clone());
        assert!(pool.try_pin(PageId(1)).is_err());
        assert_eq!(pool.quarantined(), vec![PageId(1)]);
        assert_eq!(pool.pool_stats().quarantined, 1);
        // Fail-fast now: no second physical read, no second CRC failure.
        let before = pool.pool_stats().crc_failures;
        let err = pool.try_pin(PageId(1)).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert_eq!(pool.pool_stats().crc_failures, before);
        // The undamaged page is unaffected.
        assert_eq!(pool.with_page(PageId(0), |b| b[0]), 1);
        // Repair the bytes on disk, lift the quarantine: reads work again.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 9)).unwrap();
            f.write_all(&[0x00]).unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = 2;
            assert_eq!(crc32(&page), crcs[1], "test rebuilt the original page");
        }
        assert!(pool.clear_quarantine(PageId(1)));
        assert_eq!(pool.with_page(PageId(1), |b| b[0]), 2);
        assert_eq!(pool.pool_stats().quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_read_fault_surfaces_and_quarantines() {
        let dir = std::env::temp_dir().join(format!("fix-rfault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let pool = BufferPool::shared(4).attach(Box::new(FileBackend::create(&path).unwrap()));
            let p = pool.allocate();
            pool.with_page_mut(p, |b| b[0] = 7);
            pool.flush().unwrap();
        }
        let pool = BufferPool::shared(4).attach(Box::new(FileBackend::open(&path).unwrap()));
        crate::fault::set_read_fault(Some(crate::fault::ReadFaultPlan::new(
            0,
            crate::fault::ReadFaultKind::Error,
        )));
        let err = pool.try_pin(PageId(0)).unwrap_err();
        crate::fault::set_read_fault(None);
        assert!(matches!(err, StorageError::Io(_)), "{err}");
        assert_eq!(pool.quarantined(), vec![PageId(0)]);
        // Out-of-range ids never quarantine (caller bug, not damage).
        assert!(pool.try_pin(PageId(99)).is_err());
        assert_eq!(pool.quarantined().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_errors_display() {
        let e = StorageError::OutOfRange {
            page: PageId(9),
            pages: 3,
        };
        assert_eq!(e.to_string(), "page 9 out of range (backend has 3)");
        let e = StorageError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
