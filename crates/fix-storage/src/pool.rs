//! Storage backends and the LRU buffer pool.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::page::{PageId, PAGE_SIZE};

/// Fixed-size page I/O.
pub trait StorageBackend: Send {
    /// Reads page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]);
    /// Writes `buf` to page `id`.
    fn write_page(&mut self, id: PageId, buf: &[u8]);
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> PageId;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// In-memory backend (the default for tests and experiments; the buffer
/// pool still simulates the I/O pattern, which is what the metrics need).
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: Vec<Box<[u8]>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) {
        buf.copy_from_slice(&self.pages[id.0 as usize]);
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) {
        self.pages[id.0 as usize].copy_from_slice(buf);
    }

    fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        id
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// File-backed pages.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    pages: u64,
}

impl FileBackend {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self { file, pages: 0 })
    }

    /// Opens an existing page file.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            pages: len / PAGE_SIZE as u64,
        })
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) {
        self.file
            .seek(SeekFrom::Start(id.offset()))
            .expect("seek page");
        self.file.read_exact(buf).expect("read page");
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) {
        self.file
            .seek(SeekFrom::Start(id.offset()))
            .expect("seek page");
        self.file.write_all(buf).expect("write page");
    }

    fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages);
        self.pages += 1;
        self.file
            .seek(SeekFrom::Start(id.offset()))
            .expect("seek page");
        self.file.write_all(&[0u8; PAGE_SIZE]).expect("extend file");
        id
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }
}

/// I/O and cache counters. `random_reads` counts cache-miss reads whose
/// page id is not the successor of the previously missed id — the proxy for
/// the random-vs-sequential distinction driving the clustered/unclustered
/// tradeoff (Section 4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (physical page reads).
    pub misses: u64,
    /// Physical page writes (evictions of dirty pages + flushes).
    pub writes: u64,
    /// Misses that were not sequential with the previous miss.
    pub random_reads: u64,
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    tick: u64,
    stats: IoStats,
    last_miss: Option<PageId>,
}

/// An LRU buffer pool over a [`StorageBackend`].
///
/// The access API is closure-based: pages are pinned only for the duration
/// of [`BufferPool::with_page`] / [`BufferPool::with_page_mut`], which keeps
/// the pool free of guard-lifetime bookkeeping while still exercising a
/// realistic hit/miss/eviction pattern.
pub struct BufferPool {
    state: Mutex<(Inner, Box<dyn StorageBackend>)>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool with room for `capacity` pages.
    pub fn new(backend: Box<dyn StorageBackend>, capacity: usize) -> Self {
        assert!(capacity >= 1, "pool needs at least one frame");
        Self {
            state: Mutex::new((
                Inner {
                    frames: Vec::new(),
                    map: HashMap::new(),
                    tick: 0,
                    stats: IoStats::default(),
                    last_miss: None,
                },
                backend,
            )),
            capacity,
        }
    }

    /// Convenience: an in-memory pool.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(Box::new(MemBackend::new()), capacity)
    }

    /// Allocates a fresh zeroed page.
    pub fn allocate(&self) -> PageId {
        let mut guard = self.state.lock();
        let (_, backend) = &mut *guard;
        backend.allocate()
    }

    /// Number of pages in the underlying backend.
    pub fn num_pages(&self) -> u64 {
        self.state.lock().1.num_pages()
    }

    /// Runs `f` over an immutable view of page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        let mut guard = self.state.lock();
        let (inner, backend) = &mut *guard;
        let frame = Self::fetch(inner, backend.as_mut(), id, self.capacity);
        f(&inner.frames[frame].data)
    }

    /// Runs `f` over a mutable view of page `id`, marking it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = self.state.lock();
        let (inner, backend) = &mut *guard;
        let frame = Self::fetch(inner, backend.as_mut(), id, self.capacity);
        inner.frames[frame].dirty = true;
        f(&mut inner.frames[frame].data)
    }

    fn fetch(
        inner: &mut Inner,
        backend: &mut dyn StorageBackend,
        id: PageId,
        capacity: usize,
    ) -> usize {
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&fi) = inner.map.get(&id) {
            inner.stats.hits += 1;
            inner.frames[fi].last_used = tick;
            return fi;
        }
        inner.stats.misses += 1;
        if inner.last_miss.map(|p| PageId(p.0 + 1)) != Some(id) {
            inner.stats.random_reads += 1;
        }
        inner.last_miss = Some(id);
        let fi = if inner.frames.len() < capacity {
            inner.frames.push(Frame {
                page: id,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                last_used: tick,
            });
            inner.frames.len() - 1
        } else {
            // Evict the least recently used frame (all frames are unpinned
            // between calls by construction).
            let (fi, _) = inner
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .expect("pool has frames");
            let victim = &mut inner.frames[fi];
            if victim.dirty {
                backend.write_page(victim.page, &victim.data);
                inner.stats.writes += 1;
            }
            inner.map.remove(&victim.page);
            victim.page = id;
            victim.dirty = false;
            victim.last_used = tick;
            fi
        };
        backend.read_page(id, &mut inner.frames[fi].data);
        inner.map.insert(id, fi);
        fi
    }

    /// Writes all dirty pages back to the backend.
    pub fn flush(&self) {
        let mut guard = self.state.lock();
        let (inner, backend) = &mut *guard;
        for f in &mut inner.frames {
            if f.dirty {
                backend.write_page(f.page, &f.data);
                f.dirty = false;
                inner.stats.writes += 1;
            }
        }
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().0.stats
    }

    /// Resets the I/O counters (between experiment phases).
    pub fn reset_stats(&self) {
        let mut guard = self.state.lock();
        guard.0.stats = IoStats::default();
        guard.0.last_miss = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let pool = BufferPool::in_memory(4);
        let p = pool.allocate();
        pool.with_page_mut(p, |b| b[0..4].copy_from_slice(&[1, 2, 3, 4]));
        let v = pool.with_page(p, |b| b[0..4].to_vec());
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let pool = BufferPool::in_memory(2);
        let ids: Vec<_> = (0..5).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |b| b[0] = i as u8 + 10);
        }
        // All five pages were touched through a 2-frame pool; re-read them.
        for (i, &id) in ids.iter().enumerate() {
            let v = pool.with_page(id, |b| b[0]);
            assert_eq!(v, i as u8 + 10);
        }
        let s = pool.stats();
        assert!(s.misses >= 5, "{s:?}");
        assert!(s.writes >= 3, "{s:?}");
    }

    #[test]
    fn hits_are_counted() {
        let pool = BufferPool::in_memory(2);
        let p = pool.allocate();
        pool.with_page(p, |_| ());
        pool.with_page(p, |_| ());
        pool.with_page(p, |_| ());
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn sequential_vs_random_reads() {
        let pool = BufferPool::in_memory(1);
        let ids: Vec<_> = (0..4).map(|_| pool.allocate()).collect();
        // Sequential scan: 4 misses, only the first is "random".
        for &id in &ids {
            pool.with_page(id, |_| ());
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.random_reads, 1, "{s:?}");
        pool.reset_stats();
        // Reverse scan: the last page is still cached (hit); every other
        // access misses, and every miss is random.
        for &id in ids.iter().rev() {
            pool.with_page(id, |_| ());
        }
        let s = pool.stats();
        assert_eq!(s.hits, 1, "{s:?}");
        assert_eq!(s.misses, 3, "{s:?}");
        assert_eq!(s.random_reads, 3, "{s:?}");
    }

    #[test]
    fn file_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("fix-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let pool = BufferPool::new(Box::new(FileBackend::create(&path).unwrap()), 2);
            let p0 = pool.allocate();
            let p1 = pool.allocate();
            pool.with_page_mut(p0, |b| b[100] = 42);
            pool.with_page_mut(p1, |b| b[200] = 43);
            pool.flush();
        }
        {
            let pool = BufferPool::new(Box::new(FileBackend::open(&path).unwrap()), 2);
            assert_eq!(pool.num_pages(), 2);
            assert_eq!(pool.with_page(PageId(0), |b| b[100]), 42);
            assert_eq!(pool.with_page(PageId(1), |b| b[200]), 43);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let pool = BufferPool::in_memory(2);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        pool.with_page(a, |_| ());
        pool.with_page(b, |_| ());
        pool.with_page(a, |_| ()); // a is now hotter than b
        pool.with_page(c, |_| ()); // should evict b
        pool.reset_stats();
        pool.with_page(a, |_| ());
        assert_eq!(pool.stats().hits, 1, "a must still be cached");
        pool.with_page(b, |_| ());
        assert_eq!(pool.stats().misses, 1, "b must have been evicted");
    }
}
