//! Deterministic write-fault injection — the failpoint harness behind the
//! persistence crash-matrix tests.
//!
//! [`FaultFile`] wraps any [`Write`] and counts *logical* write calls
//! (each `write`/`write_all` issued by the caller is one boundary, no
//! matter how the OS batches bytes underneath). A [`FaultPlan`] names one
//! boundary and what goes wrong there:
//!
//! * [`FaultKind::Error`] — the N-th write fails outright, nothing of it
//!   reaches the inner writer (a full I/O error, e.g. `ENOSPC`).
//! * [`FaultKind::Torn`] — only a prefix of the N-th write lands before
//!   the error (a torn sector, the classic partial-write crash).
//! * [`FaultKind::Truncate`] — the N-th and every later write is silently
//!   dropped and the failure only surfaces at [`Write::flush`] (lost
//!   writes detected late, as when the kernel reports a deferred
//!   write-back error at `fsync`).
//!
//! Every kind leaves the inner writer holding a strict prefix of the
//! intended bytes and makes the save *fail*, so an atomic
//! temp-file+rename protocol must leave the previous database untouched.
//! Sweeping `nth` over every boundary is the crash matrix.
//!
//! # Read faults
//!
//! The read side mirrors this with a thread-local injector instead of a
//! wrapper type, because reads happen deep inside the buffer pool and the
//! WAL where no wrapping seam exists. Every *logical read boundary* — one
//! page fetch in `FileBackend::read_page`, one WAL segment read, one
//! metadata-tail read in the persistence layer — calls
//! [`read_boundary`] after the real bytes arrive. An armed
//! [`ReadFaultPlan`] names one boundary (counted per thread since the
//! last [`set_read_fault`]) and what goes wrong there:
//!
//! * [`ReadFaultKind::Error`] — the read fails outright (`EIO`).
//! * [`ReadFaultKind::Short`] — the read comes back short
//!   (`UnexpectedEof`), as when the file was truncated underneath.
//! * [`ReadFaultKind::Torn`] — the read *succeeds* but only the first
//!   `keep` bytes are genuine; the rest are flipped. No error surfaces at
//!   the I/O layer — the checksum layers above (per-page CRCs, framed
//!   section CRCs, WAL record CRCs) must catch it, which is exactly what
//!   the fault exists to prove.
//!
//! The plan is one-shot: it disarms after firing, so the boundaries after
//! the faulted one behave normally. Thread-locality keeps parallel test
//! runs from injecting into each other.

use std::cell::Cell;
use std::io::{self, Write};

/// What goes wrong at the chosen write boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the write with an I/O error; no bytes land.
    Error,
    /// Write only the first `keep` bytes, then fail.
    Torn {
        /// Bytes of the faulted write that still reach the inner writer.
        keep: usize,
    },
    /// Silently drop this and every subsequent write; fail at `flush`.
    Truncate,
    /// Fail the write with `ENOSPC` (disk full); no bytes land. Unlike
    /// [`FaultKind::Error`] the error is distinguishable via
    /// [`is_disk_full`], so callers can exercise the read-only
    /// degradation path rather than the generic fault path.
    DiskFull,
}

/// One injected fault: disrupt the `nth` (0-based) write call.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// 0-based index of the write call to disrupt.
    pub nth: usize,
    /// Failure mode at that boundary.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Plan a fault of `kind` at the `nth` write call.
    pub fn new(nth: usize, kind: FaultKind) -> Self {
        Self { nth, kind }
    }
}

/// The error every injected fault surfaces as.
fn injected() -> io::Error {
    io::Error::other("injected write fault")
}

/// The `ENOSPC` error an injected [`FaultKind::DiskFull`] surfaces as —
/// indistinguishable from the real thing by construction.
pub fn disk_full_error() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

/// True if `e` means the device is out of space (`ENOSPC`), whether it
/// came from the kernel or from [`FaultKind::DiskFull`].
pub fn is_disk_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull
}

/// A [`Write`] adapter that injects one deterministic fault (see the
/// module docs). With `plan = None` it is a transparent pass-through that
/// still counts write boundaries, which is how callers discover how many
/// boundaries a save has.
pub struct FaultFile<W: Write> {
    inner: W,
    plan: Option<FaultPlan>,
    writes: usize,
    /// Set once a `Truncate` fault trips: swallow writes, fail `flush`.
    dropping: bool,
}

impl<W: Write> FaultFile<W> {
    /// Wraps `inner`; `plan` picks the fault (or `None` for none).
    pub fn new(inner: W, plan: Option<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            writes: 0,
            dropping: false,
        }
    }

    /// Number of write calls observed so far.
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.writes;
        self.writes += 1;
        if self.dropping {
            return Ok(buf.len());
        }
        if let Some(p) = self.plan {
            if n == p.nth {
                match p.kind {
                    FaultKind::Error => return Err(injected()),
                    FaultKind::Torn { keep } => {
                        let k = keep.min(buf.len());
                        self.inner.write_all(&buf[..k])?;
                        return Err(injected());
                    }
                    FaultKind::Truncate => {
                        self.dropping = true;
                        return Ok(buf.len());
                    }
                    FaultKind::DiskFull => return Err(disk_full_error()),
                }
            }
        }
        // Forward whole buffers so one caller write stays one boundary.
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dropping {
            return Err(injected());
        }
        self.inner.flush()
    }
}

/// What goes wrong at the chosen read boundary (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFaultKind {
    /// Fail the read with an I/O error; no bytes are delivered.
    Error,
    /// Deliver nothing and fail with `UnexpectedEof` — the file ended
    /// early underneath the reader.
    Short,
    /// Deliver the buffer with every byte after the first `keep` flipped;
    /// the read itself *succeeds*. Checksums above must catch it.
    Torn {
        /// Bytes of the faulted read that stay genuine.
        keep: usize,
    },
}

/// One injected read fault: disrupt the `nth` (0-based) read boundary
/// observed on this thread since the last [`set_read_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFaultPlan {
    /// 0-based index of the read boundary to disrupt.
    pub nth: usize,
    /// Failure mode at that boundary.
    pub kind: ReadFaultKind,
}

impl ReadFaultPlan {
    /// Plan a fault of `kind` at the `nth` read boundary.
    pub fn new(nth: usize, kind: ReadFaultKind) -> Self {
        Self { nth, kind }
    }

    /// Parses the `FIXDB_READ_FAULT` spec format:
    /// `NTH:error`, `NTH:short`, or `NTH:torn:KEEP`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad = || format!("bad read-fault spec {spec:?} (want NTH:error|short|torn:KEEP)");
        let mut parts = spec.split(':');
        let nth: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let kind = match (parts.next(), parts.next(), parts.next()) {
            (Some("error"), None, None) => ReadFaultKind::Error,
            (Some("short"), None, None) => ReadFaultKind::Short,
            (Some("torn"), Some(keep), None) => ReadFaultKind::Torn {
                keep: keep.parse().map_err(|_| bad())?,
            },
            _ => return Err(bad()),
        };
        Ok(Self { nth, kind })
    }
}

thread_local! {
    /// The armed read fault for this thread, if any.
    static READ_FAULT: Cell<Option<ReadFaultPlan>> = const { Cell::new(None) };
    /// Read boundaries observed on this thread since the last
    /// [`set_read_fault`].
    static READ_BOUNDARIES: Cell<usize> = const { Cell::new(0) };
}

/// Arms (or with `None`, disarms) a read fault on the current thread and
/// resets the boundary counter. The plan is one-shot: it disarms itself
/// after firing.
pub fn set_read_fault(plan: Option<ReadFaultPlan>) {
    READ_FAULT.with(|f| f.set(plan));
    READ_BOUNDARIES.with(|c| c.set(0));
}

/// Read boundaries observed on this thread since the last
/// [`set_read_fault`] — how callers discover how many boundaries an
/// operation has before sweeping `nth` over them.
pub fn read_boundaries() -> usize {
    READ_BOUNDARIES.with(Cell::get)
}

/// Declares one logical read boundary: `buf` holds the bytes genuinely
/// read. With no plan armed (the production case: one thread-local load
/// and one branch) this only counts. An armed plan whose `nth` matches
/// injects its fault — possibly mutating `buf` — and disarms.
pub fn read_boundary(buf: &mut [u8]) -> io::Result<()> {
    let n = READ_BOUNDARIES.with(|c| {
        let n = c.get();
        c.set(n + 1);
        n
    });
    let Some(p) = READ_FAULT.with(Cell::get) else {
        return Ok(());
    };
    if n != p.nth {
        return Ok(());
    }
    READ_FAULT.with(|f| f.set(None));
    match p.kind {
        ReadFaultKind::Error => Err(io::Error::other("injected read fault")),
        ReadFaultKind::Short => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "injected short read",
        )),
        ReadFaultKind::Torn { keep } => {
            for b in buf.iter_mut().skip(keep) {
                *b ^= 0xA5; // always changes the byte, whatever its value
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(plan: Option<FaultPlan>) -> (Vec<u8>, io::Result<()>) {
        let mut f = FaultFile::new(Vec::new(), plan);
        let result = (|| {
            for chunk in [&b"aaaa"[..], b"bb", b"cccc"] {
                f.write_all(chunk)?;
            }
            f.flush()
        })();
        (f.into_inner(), result)
    }

    #[test]
    fn no_plan_passes_through() {
        let (bytes, result) = run(None);
        assert!(result.is_ok());
        assert_eq!(bytes, b"aaaabbcccc");
    }

    #[test]
    fn error_drops_the_faulted_write() {
        let (bytes, result) = run(Some(FaultPlan::new(1, FaultKind::Error)));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaa");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let (bytes, result) = run(Some(FaultPlan::new(2, FaultKind::Torn { keep: 1 })));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaabbc");
    }

    #[test]
    fn truncate_surfaces_at_flush() {
        let (bytes, result) = run(Some(FaultPlan::new(1, FaultKind::Truncate)));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaa", "everything after the fault is dropped");
    }

    #[test]
    fn fault_beyond_the_last_write_is_a_no_op() {
        let (bytes, result) = run(Some(FaultPlan::new(99, FaultKind::Error)));
        assert!(result.is_ok());
        assert_eq!(bytes, b"aaaabbcccc");
    }

    #[test]
    fn counts_logical_writes() {
        let mut f = FaultFile::new(Vec::new(), None);
        f.write_all(b"xy").unwrap();
        f.write_all(b"z").unwrap();
        assert_eq!(f.writes(), 2);
    }

    #[test]
    fn disk_full_fault_is_recognizable_enospc() {
        let mut f = FaultFile::new(Vec::new(), Some(FaultPlan::new(0, FaultKind::DiskFull)));
        let err = f.write_all(b"abc").unwrap_err();
        assert!(is_disk_full(&err), "got {err:?}");
        assert!(!is_disk_full(&injected()));
    }

    #[test]
    fn read_boundary_counts_and_passes_through_unarmed() {
        set_read_fault(None);
        let mut buf = *b"hello";
        read_boundary(&mut buf).unwrap();
        read_boundary(&mut buf).unwrap();
        assert_eq!(read_boundaries(), 2);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn read_fault_error_fires_once_at_nth() {
        set_read_fault(Some(ReadFaultPlan::new(1, ReadFaultKind::Error)));
        let mut buf = [0u8; 4];
        read_boundary(&mut buf).unwrap();
        assert!(read_boundary(&mut buf).is_err());
        // One-shot: the plan disarmed itself.
        read_boundary(&mut buf).unwrap();
        set_read_fault(None);
    }

    #[test]
    fn read_fault_short_is_unexpected_eof() {
        set_read_fault(Some(ReadFaultPlan::new(0, ReadFaultKind::Short)));
        let mut buf = [0u8; 4];
        let err = read_boundary(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        set_read_fault(None);
    }

    #[test]
    fn read_fault_torn_flips_past_keep_and_succeeds() {
        set_read_fault(Some(ReadFaultPlan::new(0, ReadFaultKind::Torn { keep: 2 })));
        let mut buf = *b"abcd";
        read_boundary(&mut buf).unwrap();
        assert_eq!(&buf[..2], b"ab");
        assert_ne!(&buf[2..], b"cd");
        set_read_fault(None);
    }

    #[test]
    fn read_fault_spec_parses() {
        assert_eq!(
            ReadFaultPlan::parse("3:error").unwrap(),
            ReadFaultPlan::new(3, ReadFaultKind::Error)
        );
        assert_eq!(
            ReadFaultPlan::parse("0:short").unwrap(),
            ReadFaultPlan::new(0, ReadFaultKind::Short)
        );
        assert_eq!(
            ReadFaultPlan::parse("7:torn:12").unwrap(),
            ReadFaultPlan::new(7, ReadFaultKind::Torn { keep: 12 })
        );
        for bad in ["", "x:error", "1:huh", "1:torn", "1:torn:x", "1:error:2"] {
            assert!(ReadFaultPlan::parse(bad).is_err(), "{bad:?} parsed");
        }
    }
}
