//! Deterministic write-fault injection — the failpoint harness behind the
//! persistence crash-matrix tests.
//!
//! [`FaultFile`] wraps any [`Write`] and counts *logical* write calls
//! (each `write`/`write_all` issued by the caller is one boundary, no
//! matter how the OS batches bytes underneath). A [`FaultPlan`] names one
//! boundary and what goes wrong there:
//!
//! * [`FaultKind::Error`] — the N-th write fails outright, nothing of it
//!   reaches the inner writer (a full I/O error, e.g. `ENOSPC`).
//! * [`FaultKind::Torn`] — only a prefix of the N-th write lands before
//!   the error (a torn sector, the classic partial-write crash).
//! * [`FaultKind::Truncate`] — the N-th and every later write is silently
//!   dropped and the failure only surfaces at [`Write::flush`] (lost
//!   writes detected late, as when the kernel reports a deferred
//!   write-back error at `fsync`).
//!
//! Every kind leaves the inner writer holding a strict prefix of the
//! intended bytes and makes the save *fail*, so an atomic
//! temp-file+rename protocol must leave the previous database untouched.
//! Sweeping `nth` over every boundary is the crash matrix.

use std::io::{self, Write};

/// What goes wrong at the chosen write boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the write with an I/O error; no bytes land.
    Error,
    /// Write only the first `keep` bytes, then fail.
    Torn {
        /// Bytes of the faulted write that still reach the inner writer.
        keep: usize,
    },
    /// Silently drop this and every subsequent write; fail at `flush`.
    Truncate,
}

/// One injected fault: disrupt the `nth` (0-based) write call.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// 0-based index of the write call to disrupt.
    pub nth: usize,
    /// Failure mode at that boundary.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Plan a fault of `kind` at the `nth` write call.
    pub fn new(nth: usize, kind: FaultKind) -> Self {
        Self { nth, kind }
    }
}

/// The error every injected fault surfaces as.
fn injected() -> io::Error {
    io::Error::other("injected write fault")
}

/// A [`Write`] adapter that injects one deterministic fault (see the
/// module docs). With `plan = None` it is a transparent pass-through that
/// still counts write boundaries, which is how callers discover how many
/// boundaries a save has.
pub struct FaultFile<W: Write> {
    inner: W,
    plan: Option<FaultPlan>,
    writes: usize,
    /// Set once a `Truncate` fault trips: swallow writes, fail `flush`.
    dropping: bool,
}

impl<W: Write> FaultFile<W> {
    /// Wraps `inner`; `plan` picks the fault (or `None` for none).
    pub fn new(inner: W, plan: Option<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            writes: 0,
            dropping: false,
        }
    }

    /// Number of write calls observed so far.
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.writes;
        self.writes += 1;
        if self.dropping {
            return Ok(buf.len());
        }
        if let Some(p) = self.plan {
            if n == p.nth {
                match p.kind {
                    FaultKind::Error => return Err(injected()),
                    FaultKind::Torn { keep } => {
                        let k = keep.min(buf.len());
                        self.inner.write_all(&buf[..k])?;
                        return Err(injected());
                    }
                    FaultKind::Truncate => {
                        self.dropping = true;
                        return Ok(buf.len());
                    }
                }
            }
        }
        // Forward whole buffers so one caller write stays one boundary.
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dropping {
            return Err(injected());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(plan: Option<FaultPlan>) -> (Vec<u8>, io::Result<()>) {
        let mut f = FaultFile::new(Vec::new(), plan);
        let result = (|| {
            for chunk in [&b"aaaa"[..], b"bb", b"cccc"] {
                f.write_all(chunk)?;
            }
            f.flush()
        })();
        (f.into_inner(), result)
    }

    #[test]
    fn no_plan_passes_through() {
        let (bytes, result) = run(None);
        assert!(result.is_ok());
        assert_eq!(bytes, b"aaaabbcccc");
    }

    #[test]
    fn error_drops_the_faulted_write() {
        let (bytes, result) = run(Some(FaultPlan::new(1, FaultKind::Error)));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaa");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let (bytes, result) = run(Some(FaultPlan::new(2, FaultKind::Torn { keep: 1 })));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaabbc");
    }

    #[test]
    fn truncate_surfaces_at_flush() {
        let (bytes, result) = run(Some(FaultPlan::new(1, FaultKind::Truncate)));
        assert!(result.is_err());
        assert_eq!(bytes, b"aaaa", "everything after the fault is dropped");
    }

    #[test]
    fn fault_beyond_the_last_write_is_a_no_op() {
        let (bytes, result) = run(Some(FaultPlan::new(99, FaultKind::Error)));
        assert!(result.is_ok());
        assert_eq!(bytes, b"aaaabbcccc");
    }

    #[test]
    fn counts_logical_writes() {
        let mut f = FaultFile::new(Vec::new(), None);
        f.write_all(b"xy").unwrap();
        f.write_all(b"z").unwrap();
        assert_eq!(f.writes(), 2);
    }
}
