//! PathStack — the holistic *linear* path matcher (Bruno, Koudas,
//! Srivastava; SIGMOD 2002, §3), the simple-path companion of TwigStack.
//!
//! Evaluates a chain `//a//b//…//z` (descendant semantics, no branching)
//! over the per-label region streams in a single merged pass with chained
//! stacks; when an element of the *last* step is pushed with a complete
//! ancestor chain on the stacks, it is a result. Unlike TwigStack there is
//! no merge phase — for linear paths the stacks alone certify matches.

use fix_obs::{MetricsRegistry, Reportable};
use fix_xml::{Document, NodeId, Region, RegionIndex};
use fix_xpath::{Axis, PathExpr};

/// Work counters for one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStackStats {
    /// Stream elements consumed.
    pub scanned: usize,
    /// Elements pushed onto some stack.
    pub pushed: usize,
}

impl Reportable for PathStackStats {
    /// Adds this evaluation's work to the cumulative counters (one report
    /// per evaluation — these are per-run deltas, not levels).
    fn report(&self, registry: &MetricsRegistry) {
        registry
            .counter("fix_pathstack_scanned_total")
            .add(self.scanned as u64);
        registry
            .counter("fix_pathstack_pushed_total")
            .add(self.pushed as u64);
    }
}

/// Evaluates a *linear* path (no branching predicates) under
/// descendant-edge semantics, returning the last step's matches in
/// document order plus work counters. Unknown labels yield the empty
/// result.
///
/// # Panics
/// Panics if the path has branching predicates — PathStack is the linear
/// special case; use the twig evaluators otherwise.
pub fn eval_pathstack(
    doc: &Document,
    regions: &RegionIndex,
    labels: &fix_xml::LabelTable,
    path: &PathExpr,
) -> (Vec<NodeId>, PathStackStats) {
    assert!(
        path.steps.iter().all(|s| s.predicates.is_empty()),
        "PathStack handles linear paths only"
    );
    let mut resolved = Vec::with_capacity(path.steps.len());
    for s in &path.steps {
        match labels.lookup(&s.name) {
            Some(l) => resolved.push(l),
            None => return (Vec::new(), PathStackStats::default()),
        }
    }
    let k = resolved.len();
    let mut stats = PathStackStats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }
    let streams: Vec<&[Region]> = resolved.iter().map(|&l| regions.stream(l)).collect();
    let rooted = path.steps[0].axis == Axis::Child;
    let mut pos = vec![0usize; k];
    let mut stacks: Vec<Vec<Region>> = vec![Vec::new(); k];
    let mut out = Vec::new();
    loop {
        let mut best: Option<(usize, Region)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(&r) = s.get(pos[i]) {
                if best.map(|(_, b)| r.start < b.start).unwrap_or(true) {
                    best = Some((i, r));
                }
            }
        }
        let Some((i, r)) = best else { break };
        pos[i] += 1;
        stats.scanned += 1;
        for st in &mut stacks {
            while let Some(top) = st.last() {
                if top.end <= r.start {
                    st.pop();
                } else {
                    break;
                }
            }
        }
        // Any surviving entry of the parent stack works; checking only the
        // top is wrong when consecutive steps share a label (the top can be
        // this very element, freshly pushed from the lower step's stream).
        let ancestor_ok = if i == 0 {
            !rooted || r.node() == doc.root()
        } else {
            stacks[i - 1].iter().any(|a| a.is_ancestor_of(&r))
        };
        if ancestor_ok {
            stacks[i].push(r);
            stats.pushed += 1;
            if i == k - 1 {
                out.push(r.node());
                stacks[i].pop();
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable};
    use fix_xpath::{parse_path, Predicate, Step};

    fn setup(xml: &str) -> (Document, RegionIndex, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let r = RegionIndex::build(&d);
        (d, r, lt)
    }

    /// Descendant-semantics reference via the navigational evaluator.
    fn reference(d: &Document, lt: &LabelTable, q: &str) -> Vec<u32> {
        let p = parse_path(q).unwrap();
        let desc = fix_xpath::PathExpr {
            steps: p
                .steps
                .iter()
                .map(|s| Step {
                    axis: Axis::Descendant,
                    name: s.name.clone(),
                    predicates: Vec::new(),
                })
                .collect::<Vec<Step>>(),
        };
        crate::nok::eval_path(d, lt, &desc)
            .iter()
            .map(|n| n.0)
            .collect()
    }

    #[test]
    fn linear_paths_match_navigational_descendant_semantics() {
        let xml = "<a><b><c/><a><b><c/></b></a></b><c/><b/></a>";
        let (d, r, lt) = setup(xml);
        for q in ["//a/b/c", "//a/b", "//b/c", "//a/a/b", "//c"] {
            let p = parse_path(q).unwrap();
            let (got, stats) = eval_pathstack(&d, &r, &lt, &p);
            let got: Vec<u32> = got.iter().map(|n| n.0).collect();
            assert_eq!(got, reference(&d, &lt, q), "disagreement on {q}");
            assert!(stats.pushed <= stats.scanned);
        }
    }

    #[test]
    fn rooted_linear_paths() {
        let (d, r, lt) = setup("<a><b/><a><b/></a></a>");
        let p = parse_path("/a/b").unwrap();
        let (got, _) = eval_pathstack(&d, &r, &lt, &p);
        // Rooted: only chains anchored at the document root (descendant
        // semantics below it) — both b's descend from the root a.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn unknown_labels_yield_empty() {
        let (d, r, lt) = setup("<a><b/></a>");
        let p = parse_path("//a/zzz").unwrap();
        assert!(eval_pathstack(&d, &r, &lt, &p).0.is_empty());
    }

    #[test]
    #[should_panic(expected = "linear paths only")]
    fn branching_paths_are_rejected() {
        let (d, r, lt) = setup("<a><b/></a>");
        let mut p = parse_path("//a/b").unwrap();
        p.steps[0].predicates.push(Predicate {
            path: parse_path("//x").unwrap(),
            value: None,
        });
        let _ = eval_pathstack(&d, &r, &lt, &p);
    }
}
