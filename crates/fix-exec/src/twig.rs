//! Bottom-up structural twig matching over the region-encoded document.
//!
//! One postorder pass computes, for every query node `q`, the set of
//! document nodes rooting a match of `q`'s subtree (all edges are
//! parent-child inside a twig). A top-down pass then narrows to the nodes
//! reachable through a matched spine, yielding exactly the output node's
//! result set. Complexity `O(|doc| · |query|)`, independent of the
//! navigational evaluator's code path — which is why the tests use it as
//! an oracle against [`crate::nok`].

use fix_xml::{Document, NodeId, NodeKind};
use fix_xpath::{Axis, TwigQuery};

use crate::nok::value_matches;

/// Evaluates the twig query, returning the output node's matches in
/// document order.
pub fn eval_twig(doc: &Document, q: &TwigQuery) -> Vec<NodeId> {
    let n = doc.len();
    let qn = q.nodes.len();
    // sat[i] holds a bitmask over query nodes satisfied at document node i.
    // Twigs in this reproduction are small (the paper's depth limit is 6);
    // fall back to a boolean matrix if a query ever exceeds 64 nodes.
    assert!(
        qn <= 64,
        "twig queries larger than 64 nodes are unsupported"
    );
    let mut sat: Vec<u64> = vec![0; n];

    // Postorder = reverse preorder id works for "children before parents"?
    // No — preorder parents come first, so iterate ids in reverse: every
    // child has a larger id than its parent, hence is processed earlier.
    #[allow(clippy::needless_range_loop)] // the body reads sat[child] too
    for i in (0..n).rev() {
        let node = NodeId(i as u32);
        let label = match doc.kind(node) {
            NodeKind::Element(l) => l,
            NodeKind::Text(_) => continue,
        };
        let mut mask = 0u64;
        'query: for (qi, qnode) in q.nodes.iter().enumerate() {
            if qnode.label != label {
                continue;
            }
            if let Some(v) = &qnode.value {
                if !value_matches(doc, node, v) {
                    continue;
                }
            }
            for &qc in &qnode.children {
                let mut found = false;
                for c in doc.element_children(node) {
                    if sat[c.index()] & (1 << qc) != 0 {
                        found = true;
                        break;
                    }
                }
                if !found {
                    continue 'query;
                }
            }
            mask |= 1 << qi;
        }
        sat[i] = mask;
    }

    // Top-down narrowing along the spine from the root to the output node.
    let spine = spine_to_output(q);
    let mut current: Vec<NodeId> = Vec::new();
    // Root candidates.
    match q.root_axis {
        Axis::Child => {
            let r = doc.root();
            if sat[r.index()] & 1 != 0 {
                current.push(r);
            }
        }
        Axis::Descendant => {
            for (i, &m) in sat.iter().enumerate() {
                if m & 1 != 0 {
                    current.push(NodeId(i as u32));
                }
            }
        }
    }
    for &qstep in spine.iter().skip(1) {
        let mut next = Vec::new();
        for &p in &current {
            for c in doc.element_children(p) {
                if sat[c.index()] & (1 << qstep) != 0 {
                    next.push(c);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// True if the twig matches anywhere in the document (Definition 2's
/// existential match).
pub fn twig_matches(doc: &Document, q: &TwigQuery) -> bool {
    !eval_twig(doc, q).is_empty()
}

/// Checks whether document node `n` satisfies the query subtree rooted at
/// query node `qi` (label, value, and all child branches).
pub fn node_satisfies(doc: &Document, q: &TwigQuery, qi: usize, n: NodeId) -> bool {
    let qnode = &q.nodes[qi];
    if doc.label(n) != Some(qnode.label) {
        return false;
    }
    if let Some(v) = &qnode.value {
        if !value_matches(doc, n, v) {
            return false;
        }
    }
    qnode.children.iter().all(|&qc| {
        doc.element_children(n)
            .any(|c| node_satisfies(doc, q, qc, c))
    })
}

/// Verifies that `output` is a genuine result of `q`: the (unique) ancestor
/// chain above it instantiates the query spine, every spine node's branches
/// are satisfied, and the spine root respects the leading axis. Used to
/// refine per-node candidates (e.g. from the F&B baseline on value queries,
/// or from an unclustered FIX probe).
pub fn verify_output(doc: &Document, q: &TwigQuery, output: NodeId) -> bool {
    let spine = spine_to_output(q);
    let mut n = output;
    for (idx, &qi) in spine.iter().enumerate().rev() {
        let qnode = &q.nodes[qi];
        if doc.label(n) != Some(qnode.label) {
            return false;
        }
        if let Some(v) = &qnode.value {
            if !value_matches(doc, n, v) {
                return false;
            }
        }
        let spine_child = spine.get(idx + 1);
        for &qc in &qnode.children {
            if Some(&qc) == spine_child {
                continue; // satisfied by the chain below
            }
            if !doc
                .element_children(n)
                .any(|c| node_satisfies(doc, q, qc, c))
            {
                return false;
            }
        }
        if idx > 0 {
            n = match doc.parent(n) {
                Some(p) => p,
                None => return false,
            };
        } else if q.root_axis == Axis::Child && n != doc.root() {
            return false;
        }
    }
    true
}

/// The chain of query-node indices from the root to the output node.
fn spine_to_output(q: &TwigQuery) -> Vec<usize> {
    // Parent links.
    let mut parent = vec![usize::MAX; q.nodes.len()];
    for (i, node) in q.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c] = i;
        }
    }
    let mut spine = vec![q.output];
    let mut cur = q.output;
    while parent[cur] != usize::MAX {
        cur = parent[cur];
        spine.push(cur);
    }
    spine.reverse();
    spine
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable};
    use fix_xpath::parse_path;

    fn eval(xml: &str, query: &str) -> Vec<u32> {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let p = parse_path(query).unwrap();
        let q = match TwigQuery::from_path(&p, &lt) {
            Ok(q) => q,
            Err(fix_xpath::TwigError::UnknownLabel(_)) => return Vec::new(),
            Err(e) => panic!("{e}"),
        };
        eval_twig(&d, &q).into_iter().map(|n| n.0).collect()
    }

    const BIB: &str = "<bib>\
        <article><author><email/></author><title>X</title><ee/></article>\
        <article><author><phone/><email/></author><title>Y</title></article>\
        <book><author><phone/></author><title>Z</title></book>\
    </bib>";

    #[test]
    fn matches_agree_with_nok_on_twigs() {
        let mut lt = LabelTable::new();
        let d = parse_document(BIB, &mut lt).unwrap();
        for qs in [
            "/bib/article",
            "//author",
            "//article[ee]/title",
            "//author[phone][email]",
            "//article[author/phone]/title",
            "//bib/article/author",
            "//article[author]/ee",
            "//book[author]",
        ] {
            let p = parse_path(qs).unwrap();
            let q = TwigQuery::from_path(&p, &lt).unwrap();
            let a: Vec<u32> = eval_twig(&d, &q).iter().map(|n| n.0).collect();
            let b: Vec<u32> = crate::nok::eval_path(&d, &lt, &p)
                .iter()
                .map(|n| n.0)
                .collect();
            assert_eq!(a, b, "disagreement on {qs}");
        }
    }

    #[test]
    fn rooted_queries_respect_the_root() {
        assert_eq!(eval(BIB, "/bib/book").len(), 1);
        assert_eq!(eval(BIB, "/article").len(), 0);
    }

    #[test]
    fn value_twigs() {
        let xml = "<dblp>\
            <proceedings><publisher>Springer</publisher><title>V1</title></proceedings>\
            <proceedings><publisher>ACM</publisher><title>V2</title></proceedings>\
        </dblp>";
        assert_eq!(
            eval(xml, r#"//proceedings[publisher="Springer"][title]"#).len(),
            1
        );
        assert_eq!(eval(xml, r#"//proceedings[publisher="IEEE"]"#).len(), 0);
    }

    #[test]
    fn recursive_labels() {
        // Repeated labels along a path — the classic stress for twig DP.
        let xml = "<s><s><np/><s><np/><vp/></s></s></s>";
        assert_eq!(eval(xml, "//s/s[np]").len(), 2);
        assert_eq!(eval(xml, "//s[np][vp]").len(), 1);
        assert_eq!(eval(xml, "//s/s/s/np").len(), 1);
    }

    #[test]
    fn output_node_is_the_spine_leaf() {
        let r = eval(BIB, "//article[author]/title");
        assert_eq!(r.len(), 2);
        // Titles, not articles: check via a fresh parse.
        let mut lt = LabelTable::new();
        let d = parse_document(BIB, &mut lt).unwrap();
        for id in r {
            assert_eq!(d.label(fix_xml::NodeId(id)), lt.lookup("title"));
        }
    }
}
