//! Query processors: the refinement operators FIX plugs into, and the
//! baselines it is compared against (Section 6.3).
//!
//! * [`nok`] — a navigational twig/path evaluator in the style of the NoK
//!   operator [Zhang, Kacholia, Özsu; ICDE 2004]: document-order
//!   navigation over the primary storage, full `//` support. It is both
//!   the no-index baseline and FIX's refinement processor.
//! * [`twig`] — a bottom-up structural matcher over the region-encoded
//!   document (one postorder pass, `O(|doc| · |query|)`); an independent
//!   implementation used as the correctness oracle in tests and as an
//!   alternative refinement operator in the ablation benches.
//! * [`fbq`] — query evaluation over the F&B bisimulation index graph
//!   (the clustering-index baseline, covering for branching path queries).
//!
//! All evaluators agree on semantics: the result of a query is the set of
//! document nodes matched by the *output* step (the last step of the main
//! spine), in document order. A value predicate `[x = "v"]` matches an
//! element that has a direct text child exactly equal to `"v"` — the same
//! convention the value-hashing index uses, so index pruning and
//! refinement can never disagree.

pub mod cancel;
pub mod fbq;
pub mod merge;
pub mod nok;
pub mod pathstack;
pub mod refine;
pub mod structjoin;
pub mod twig;
pub mod twigstack;

pub use cancel::CancelToken;
pub use fbq::eval_fb;
pub use merge::{merge_k_sorted, merge_sorted};
pub use nok::{anchors, eval_path, eval_path_from, path_matches, value_matches};
pub use pathstack::{eval_pathstack, PathStackStats};
pub use refine::Refiner;
pub use structjoin::{eval_structural, join_pairs, semijoin_ancestors, semijoin_descendants};
pub use twig::{eval_twig, node_satisfies, twig_matches, verify_output};
pub use twigstack::{eval_twigstack, twigstack_filter, TwigStackStats};
