//! Navigational path evaluation (the NoK-style operator).
//!
//! Evaluates a full [`PathExpr`] — interior `//` axes, nested predicates,
//! value comparisons — by set-at-a-time navigation over the document
//! arena, maintaining context sets in document order.

use fix_xml::{Document, LabelTable, NodeId};
use fix_xpath::{Axis, PathExpr, Predicate};

/// True if element `n` has a direct text child equal to `v`.
pub fn value_matches(doc: &Document, n: NodeId, v: &str) -> bool {
    doc.children(n)
        .any(|c| doc.text(c).map(|t| t == v).unwrap_or(false))
}

/// Evaluates `path` over `doc`, returning the nodes matched by the last
/// step of the main spine, in document order. Labels are resolved through
/// `labels`; a NameTest naming an unseen label yields the empty result.
pub fn eval_path(doc: &Document, labels: &LabelTable, path: &PathExpr) -> Vec<NodeId> {
    if path.steps.is_empty() {
        return Vec::new();
    }
    // The initial context is the virtual document node: its only child is
    // the root element, and its descendants are all elements.
    let mut context: Vec<NodeId> = Vec::new();
    for (i, step) in path.steps.iter().enumerate() {
        let label = match labels.lookup(&step.name) {
            Some(l) => l,
            None => return Vec::new(),
        };
        let mut next: Vec<NodeId> = Vec::new();
        if i == 0 {
            match step.axis {
                Axis::Child => {
                    let root = doc.root();
                    if doc.label(root) == Some(label) {
                        next.push(root);
                    }
                }
                Axis::Descendant => {
                    for n in doc.descendants_or_self(doc.root()) {
                        if doc.label(n) == Some(label) {
                            next.push(n);
                        }
                    }
                }
            }
        } else {
            match step.axis {
                Axis::Child => {
                    for &c in &context {
                        for k in doc.children(c) {
                            if doc.label(k) == Some(label) {
                                next.push(k);
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    for &c in &context {
                        for d in doc.descendants_or_self(c).skip(1) {
                            if doc.label(d) == Some(label) {
                                next.push(d);
                            }
                        }
                    }
                }
            }
            // Context sets can overlap under `//`; dedup preserves document
            // order because ids are preorder ranks.
            next.sort_unstable();
            next.dedup();
        }
        // Apply predicates.
        if !step.predicates.is_empty() {
            next.retain(|&n| {
                step.predicates
                    .iter()
                    .all(|p| pred_holds(doc, labels, n, p))
            });
        }
        context = next;
        if context.is_empty() {
            return context;
        }
    }
    context
}

/// Existence of a predicate path (with optional trailing value test)
/// relative to `n`.
fn pred_holds(doc: &Document, labels: &LabelTable, n: NodeId, pred: &Predicate) -> bool {
    rel_eval(doc, labels, n, &pred.path.steps, pred.value.as_deref())
}

fn rel_eval(
    doc: &Document,
    labels: &LabelTable,
    from: NodeId,
    steps: &[fix_xpath::Step],
    value: Option<&str>,
) -> bool {
    let (step, rest) = match steps.split_first() {
        Some(x) => x,
        None => return true,
    };
    let label = match labels.lookup(&step.name) {
        Some(l) => l,
        None => return false,
    };
    let candidates: Vec<NodeId> = match step.axis {
        Axis::Child => doc
            .children(from)
            .filter(|&k| doc.label(k) == Some(label))
            .collect(),
        Axis::Descendant => doc
            .descendants_or_self(from)
            .skip(1)
            .filter(|&d| doc.label(d) == Some(label))
            .collect(),
    };
    candidates.into_iter().any(|c| {
        if !step
            .predicates
            .iter()
            .all(|p| pred_holds(doc, labels, c, p))
        {
            return false;
        }
        if rest.is_empty() {
            match value {
                Some(v) => value_matches(doc, c, v),
                None => true,
            }
        } else {
            rel_eval(doc, labels, c, rest, value)
        }
    })
}

/// Evaluates `path` with its first step *anchored* at `anchor`: the leading
/// axis is ignored and the first NameTest must match `anchor` itself. This
/// is Algorithm 2's refinement call — FIX replaces the leading `//` with
/// `/` because every candidate entry is rooted exactly where the twig must
/// anchor.
pub fn eval_path_from(
    doc: &Document,
    labels: &LabelTable,
    path: &PathExpr,
    anchor: NodeId,
) -> Vec<NodeId> {
    let (first, _) = match path.steps.split_first() {
        Some(x) => x,
        None => return Vec::new(),
    };
    if labels.lookup(&first.name) != doc.label(anchor) {
        return Vec::new();
    }
    if !first
        .predicates
        .iter()
        .all(|p| pred_holds(doc, labels, anchor, p))
    {
        return Vec::new();
    }
    let mut context = vec![anchor];
    for step in path.steps.iter().skip(1) {
        let label = match labels.lookup(&step.name) {
            Some(l) => l,
            None => return Vec::new(),
        };
        let mut next: Vec<NodeId> = Vec::new();
        match step.axis {
            Axis::Child => {
                for &c in &context {
                    for k in doc.children(c) {
                        if doc.label(k) == Some(label) {
                            next.push(k);
                        }
                    }
                }
            }
            Axis::Descendant => {
                for &c in &context {
                    for d in doc.descendants_or_self(c).skip(1) {
                        if doc.label(d) == Some(label) {
                            next.push(d);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        if !step.predicates.is_empty() {
            next.retain(|&n| {
                step.predicates
                    .iter()
                    .all(|p| pred_holds(doc, labels, n, p))
            });
        }
        context = next;
        if context.is_empty() {
            break;
        }
    }
    context
}

/// The *anchors* of a query: first-step matches that lead to at least one
/// final result. The number of index entries that "actually produce
/// results" (`rst` in the Section 6.2 metrics) is the number of anchors.
pub fn anchors(doc: &Document, labels: &LabelTable, path: &PathExpr) -> Vec<NodeId> {
    let (first, _) = match path.steps.split_first() {
        Some(x) => x,
        None => return Vec::new(),
    };
    let label = match labels.lookup(&first.name) {
        Some(l) => l,
        None => return Vec::new(),
    };
    let candidates: Vec<NodeId> = match first.axis {
        Axis::Child => {
            let root = doc.root();
            if doc.label(root) == Some(label) {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant => doc
            .descendants_or_self(doc.root())
            .filter(|&n| doc.label(n) == Some(label))
            .collect(),
    };
    candidates
        .into_iter()
        .filter(|&a| !eval_path_from(doc, labels, path, a).is_empty())
        .collect()
}

/// Existential form: does the path match at all?
pub fn path_matches(doc: &Document, labels: &LabelTable, path: &PathExpr) -> bool {
    !eval_path(doc, labels, path).is_empty()
}

/// Counts elements of `doc` visited by a full navigational evaluation —
/// the work metric for the no-index baseline (it must walk everything
/// reachable under the leading `//`).
pub fn eval_count(doc: &Document, labels: &LabelTable, path: &PathExpr) -> usize {
    eval_path(doc, labels, path).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::parse_document;
    use fix_xpath::parse_path;

    fn eval(xml: &str, q: &str) -> Vec<u32> {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        eval_path(&d, &lt, &parse_path(q).unwrap())
            .into_iter()
            .map(|n| n.0)
            .collect()
    }

    const BIB: &str = "<bib>\
        <article><author><email/></author><title>X</title><ee/></article>\
        <article><author><phone/><email/></author><title>Y</title></article>\
        <book><author><phone/></author><title>Z</title></book>\
    </bib>";

    #[test]
    fn child_steps() {
        assert_eq!(eval(BIB, "/bib/article").len(), 2);
        assert_eq!(eval(BIB, "/bib/book").len(), 1);
        assert_eq!(eval(BIB, "/article").len(), 0, "root is bib, not article");
    }

    #[test]
    fn descendant_steps() {
        assert_eq!(eval(BIB, "//author").len(), 3);
        assert_eq!(eval(BIB, "//article/author/email").len(), 2);
        assert_eq!(eval(BIB, "//bib//email").len(), 2);
    }

    #[test]
    fn predicates_filter() {
        assert_eq!(eval(BIB, "//article[ee]/title").len(), 1);
        assert_eq!(eval(BIB, "//author[phone][email]").len(), 1);
        assert_eq!(eval(BIB, "//article[author/phone]/title").len(), 1);
    }

    #[test]
    fn descendant_predicates() {
        assert_eq!(eval(BIB, "//bib[.//phone]/article").len(), 2);
        assert_eq!(eval(BIB, "//article[.//phone]/title").len(), 1);
    }

    #[test]
    fn value_predicates() {
        let xml = "<dblp>\
            <inproceedings><year>1998</year><title>A</title></inproceedings>\
            <inproceedings><year>1999</year><title>B</title></inproceedings>\
        </dblp>";
        assert_eq!(eval(xml, r#"//inproceedings[year="1998"]/title"#).len(), 1);
        assert_eq!(eval(xml, r#"//inproceedings[year="2000"]/title"#).len(), 0);
        assert_eq!(eval(xml, r#"//inproceedings[year="1998"]"#).len(), 1);
    }

    #[test]
    fn results_are_in_document_order_and_unique() {
        let xml = "<r><a><a><b/></a><b/></a></r>";
        let r = eval(xml, "//a//b");
        // Both b's, each reported once.
        assert_eq!(r.len(), 2);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_label_yields_empty() {
        assert!(eval(BIB, "//nonexistent").is_empty());
        assert!(eval(BIB, "//article[nonexistent]").is_empty());
    }

    #[test]
    fn existential_and_count() {
        let mut lt = LabelTable::new();
        let d = parse_document(BIB, &mut lt).unwrap();
        assert!(path_matches(
            &d,
            &lt,
            &parse_path("//book/author/phone").unwrap()
        ));
        assert!(!path_matches(
            &d,
            &lt,
            &parse_path("//book/author/email").unwrap()
        ));
        assert_eq!(eval_count(&d, &lt, &parse_path("//title").unwrap()), 3);
    }
}
