//! Twig evaluation over the F&B bisimulation index (the clustering
//! baseline of Section 6.3).
//!
//! Because the F&B partition is stable both forward and backward, all
//! nodes of a class satisfy the same twig subtrees and share their parent's
//! class; pure structural branching-path queries are therefore answered
//! from the index graph alone (the "covering index" property), finishing
//! with an extent concatenation. Value predicates cannot be answered from
//! the index — candidates are refined per node against the document, which
//! is exactly the cost profile the paper attributes to this baseline.

use fix_xml::{Document, NodeId};
use fix_xpath::{Axis, TwigQuery};

use fix_bisim::{FbClassId, FbIndex};

use crate::twig::verify_output;

/// Evaluates `q` over the F&B index of `doc`, returning the output node's
/// matches in document order.
pub fn eval_fb(doc: &Document, idx: &FbIndex, q: &TwigQuery) -> Vec<NodeId> {
    let has_values = q.has_values();
    // DP over (class, query node): does the class satisfy the query
    // subtree *structurally* (values ignored — the index knows nothing
    // about values)?
    let qn = q.nodes.len();
    let nc = idx.len();
    let mut sat = vec![false; qn * nc];
    // Children classes have larger... no ordering guarantee; do memoized
    // recursion instead.
    let mut memo: Vec<Option<bool>> = vec![None; qn * nc];
    fn satisfies(
        idx: &FbIndex,
        q: &TwigQuery,
        qi: usize,
        c: FbClassId,
        memo: &mut [Option<bool>],
        qn: usize,
    ) -> bool {
        let slot = c.0 as usize * qn + qi;
        if let Some(v) = memo[slot] {
            return v;
        }
        // Tentatively false to stop (impossible on a DAG, but cheap).
        memo[slot] = Some(false);
        let qnode = &q.nodes[qi];
        let ok = idx.label(c) == qnode.label
            && qnode.children.iter().all(|&qc| {
                idx.children(c)
                    .iter()
                    .any(|&cc| satisfies(idx, q, qc, cc, memo, qn))
            });
        memo[slot] = Some(ok);
        ok
    }
    for c in idx.iter() {
        for qi in 0..qn {
            sat[c.0 as usize * qn + qi] = satisfies(idx, q, qi, c, &mut memo, qn);
        }
    }

    // Spine narrowing at class granularity.
    let spine = spine_of(q);
    let mut classes: Vec<FbClassId> = match q.root_axis {
        Axis::Child => idx
            .roots()
            .iter()
            .copied()
            .filter(|c| sat[c.0 as usize * qn])
            .collect(),
        Axis::Descendant => idx.iter().filter(|c| sat[c.0 as usize * qn]).collect(),
    };
    for &qstep in spine.iter().skip(1) {
        let mut next: Vec<FbClassId> = Vec::new();
        for &c in &classes {
            for &cc in idx.children(c) {
                if sat[cc.0 as usize * qn + qstep] {
                    next.push(cc);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        classes = next;
        if classes.is_empty() {
            break;
        }
    }

    // Concatenate extents (covering property) …
    let mut out: Vec<NodeId> = classes
        .iter()
        .flat_map(|&c| idx.extent(c).iter().copied())
        .collect();
    out.sort_unstable();
    out.dedup();
    // … and refine values per node if present (index is value-blind).
    if has_values {
        out.retain(|&n| verify_output(doc, q, n));
    }
    out
}

fn spine_of(q: &TwigQuery) -> Vec<usize> {
    let mut parent = vec![usize::MAX; q.nodes.len()];
    for (i, node) in q.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c] = i;
        }
    }
    let mut spine = vec![q.output];
    let mut cur = q.output;
    while parent[cur] != usize::MAX {
        cur = parent[cur];
        spine.push(cur);
    }
    spine.reverse();
    spine
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_bisim::FbIndex;
    use fix_xml::{parse_document, LabelTable};
    use fix_xpath::parse_path;

    const BIB: &str = "<bib>\
        <article><author><email/></author><title>X</title><ee/></article>\
        <article><author><phone/><email/></author><title>Y</title></article>\
        <book><author><phone/></author><title>Z</title></book>\
    </bib>";

    fn check_against_nok(xml: &str, queries: &[&str]) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let idx = FbIndex::build(&d);
        for qs in queries {
            let p = parse_path(qs).unwrap();
            let q = match TwigQuery::from_path(&p, &lt) {
                Ok(q) => q,
                Err(fix_xpath::TwigError::UnknownLabel(_)) => continue,
                Err(e) => panic!("{e}"),
            };
            let a = eval_fb(&d, &idx, &q);
            let b = crate::nok::eval_path(&d, &lt, &p);
            assert_eq!(a, b, "disagreement on {qs}");
        }
    }

    #[test]
    fn agrees_with_nok_on_structural_twigs() {
        check_against_nok(
            BIB,
            &[
                "/bib/article",
                "//author",
                "//article[ee]/title",
                "//author[phone][email]",
                "//article[author/phone]/title",
                "//book[author]",
                "/bib/book/author/phone",
            ],
        );
    }

    #[test]
    fn agrees_on_recursive_documents() {
        check_against_nok(
            "<s><s><np/><s><np/><vp/></s></s><vp/></s>",
            &["//s/s[np]", "//s[np][vp]", "//s/s/s/np", "/s[vp]/s"],
        );
    }

    #[test]
    fn value_queries_are_refined_per_node() {
        let xml = "<dblp>\
            <proceedings><publisher>Springer</publisher><title>V1</title></proceedings>\
            <proceedings><publisher>Springer</publisher><title>V2</title></proceedings>\
            <proceedings><publisher>ACM</publisher><title>V3</title></proceedings>\
        </dblp>";
        check_against_nok(
            xml,
            &[
                r#"//proceedings[publisher="Springer"][title]"#,
                r#"//proceedings[publisher="ACM"]/title"#,
                r#"//proceedings[publisher="IEEE"]/title"#,
            ],
        );
    }
}
