//! Cooperative cancellation for long-running query work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the
//! caller that sets a deadline (or cancels explicitly) and the scan /
//! refinement loops that poll it at chunk boundaries. Polling is a
//! relaxed atomic load plus, at most once per [`CHECK_INTERVAL`] polls, a
//! clock read — cheap enough for per-candidate loops.
//!
//! The token carries *why* work should stop only implicitly: a tripped
//! token means "stop and report cancellation"; mapping that to a
//! deadline-exceeded error (and attaching partial progress) is the
//! caller's job, since only the caller knows the deadline it set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many [`CancelToken::should_stop`] polls elapse between deadline
/// clock reads. Explicit [`CancelToken::cancel`] is still observed on
/// every poll (it is just an atomic load).
pub const CHECK_INTERVAL: u32 = 64;

#[derive(Debug)]
struct Shared {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional deadline. Clones observe
/// the same state; any clone's [`cancel`](CancelToken::cancel) stops all
/// holders.
#[derive(Debug, Clone)]
pub struct CancelToken {
    shared: Arc<Shared>,
    /// Per-clone poll counter gating the deadline clock read.
    polls: u32,
}

impl CancelToken {
    /// A token that only trips on explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::with_deadline(None)
    }

    /// A token that trips once `deadline` passes (or on explicit cancel).
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        Self {
            shared: Arc::new(Shared {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
            polls: 0,
        }
    }

    /// Trips the token for every clone.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }

    /// True once the token has tripped (explicitly or by deadline). Does
    /// not advance the poll counter; use in non-loop contexts.
    pub fn is_cancelled(&self) -> bool {
        if self.shared.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.shared.deadline {
            Some(d) if Instant::now() >= d => {
                self.shared.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The loop-boundary poll: cheap on most calls, checking the clock
    /// against the deadline every [`CHECK_INTERVAL`]-th call. Returns
    /// true once the work should stop.
    pub fn should_stop(&mut self) -> bool {
        if self.shared.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if self.shared.deadline.is_none() {
            return false;
        }
        self.polls += 1;
        if self.polls < CHECK_INTERVAL {
            return false;
        }
        self.polls = 0;
        self.is_cancelled()
    }

    /// The deadline this token trips at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.shared.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_trips_every_clone() {
        let mut a = CancelToken::new();
        let b = a.clone();
        assert!(!a.should_stop());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.should_stop());
        assert!(b.is_cancelled());
    }

    #[test]
    fn no_deadline_never_trips_on_its_own() {
        let mut t = CancelToken::new();
        for _ in 0..(CHECK_INTERVAL * 3) {
            assert!(!t.should_stop());
        }
    }

    #[test]
    fn past_deadline_trips() {
        let t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert!(t.is_cancelled());
        let mut t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        // should_stop needs at most CHECK_INTERVAL polls to see it.
        let tripped = (0..=CHECK_INTERVAL).any(|_| t.should_stop());
        assert!(tripped);
    }

    #[test]
    fn future_deadline_does_not_trip_early() {
        let mut t = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        for _ in 0..(CHECK_INTERVAL * 3) {
            assert!(!t.should_stop());
        }
        assert!(!t.is_cancelled());
    }
}
