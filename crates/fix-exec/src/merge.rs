//! Ordered k-way merge of candidate streams.
//!
//! The incremental index scans several sorted sources — the base B+-tree,
//! each frozen delta run, and the active run — and refinement must see
//! one stream in the exact order a monolithic tree would have produced.
//! [`merge_k_sorted`] performs that merge on a caller-supplied key
//! projection; ties break toward the earlier source (the base tree is
//! source 0), which cannot occur for index scans (entry sequence numbers
//! make keys unique) but keeps the merge total. [`merge_sorted`] is the
//! original two-way special case, kept for the base + single-run shape.

/// Merges `sources` — each key-sorted under the same projection — into
/// one vector ordered by `key(item)`.
///
/// The output is sorted and stable: equal keys keep earlier-source-first
/// order, and within each source the original order.
pub fn merge_k_sorted<T, K: Ord, F: Fn(&T) -> K>(sources: Vec<Vec<T>>, key: F) -> Vec<T> {
    let mut live: Vec<Vec<T>> = sources.into_iter().filter(|s| !s.is_empty()).collect();
    match live.len() {
        0 => return Vec::new(),
        1 => return live.pop().expect("one source"),
        _ => {}
    }
    let total = live.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<T>>> =
        live.into_iter().map(|s| s.into_iter().peekable()).collect();
    loop {
        // Linear head scan: k is small (bounded by the tiering policy),
        // so this beats a heap on constant factors. `<` keeps the tie on
        // the earliest source.
        let mut best: Option<(usize, K)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(item) = it.peek() {
                let k = key(item);
                match &best {
                    Some((_, bk)) if *bk <= k => {}
                    _ => best = Some((i, k)),
                }
            }
        }
        let Some((i, _)) = best else { break };
        out.push(iters[i].next().expect("peeked"));
    }
    out
}

/// Merges two key-sorted vectors into one, ordering by `key(item)`.
///
/// Both inputs must already be sorted under the same projection; the
/// output is then sorted and stable (equal keys keep base-before-delta,
/// and within each input the original order).
pub fn merge_sorted<T, K: Ord, F: Fn(&T) -> K>(base: Vec<T>, delta: Vec<T>, key: F) -> Vec<T> {
    if delta.is_empty() {
        return base;
    }
    if base.is_empty() {
        return delta;
    }
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let mut b = base.into_iter().peekable();
    let mut d = delta.into_iter().peekable();
    loop {
        match (b.peek(), d.peek()) {
            (Some(x), Some(y)) => {
                if key(x) <= key(y) {
                    out.push(b.next().unwrap());
                } else {
                    out.push(d.next().unwrap());
                }
            }
            (Some(_), None) => {
                out.extend(b);
                break;
            }
            (None, Some(_)) => {
                out.extend(d);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_into_global_order() {
        let base = vec![(1u32, 'b'), (4, 'b'), (6, 'b')];
        let delta = vec![(2u32, 'd'), (4, 'd'), (9, 'd')];
        let merged = merge_sorted(base, delta, |&(k, _)| k);
        assert_eq!(
            merged,
            vec![(1, 'b'), (2, 'd'), (4, 'b'), (4, 'd'), (6, 'b'), (9, 'd')]
        );
    }

    #[test]
    fn k_way_matches_iterated_two_way_and_breaks_ties_earlier_source_first() {
        let a = vec![(1u32, 'a'), (4, 'a'), (6, 'a')];
        let b = vec![(2u32, 'b'), (4, 'b')];
        let c = vec![(0u32, 'c'), (4, 'c'), (9, 'c')];
        let merged = merge_k_sorted(vec![a.clone(), b.clone(), c.clone()], |&(k, _)| k);
        let two_way = merge_sorted(merge_sorted(a, b, |&(k, _)| k), c, |&(k, _)| k);
        assert_eq!(merged, two_way);
        assert_eq!(
            merged,
            vec![
                (0, 'c'),
                (1, 'a'),
                (2, 'b'),
                (4, 'a'),
                (4, 'b'),
                (4, 'c'),
                (6, 'a'),
                (9, 'c')
            ]
        );
    }

    #[test]
    fn k_way_handles_degenerate_shapes() {
        let none: Vec<i32> = merge_k_sorted(Vec::<Vec<i32>>::new(), |&k| k);
        assert!(none.is_empty());
        assert_eq!(merge_k_sorted(vec![vec![3, 5]], |&k| k), vec![3, 5]);
        assert_eq!(
            merge_k_sorted(vec![vec![], vec![2, 7], vec![]], |&k| k),
            vec![2, 7]
        );
    }

    #[test]
    fn empty_sides_pass_through() {
        let base = vec![1, 2, 3];
        assert_eq!(merge_sorted(base.clone(), vec![], |&k| k), vec![1, 2, 3]);
        assert_eq!(merge_sorted(vec![], base, |&k| k), vec![1, 2, 3]);
        let none: Vec<i32> = merge_sorted(vec![], vec![], |&k| k);
        assert!(none.is_empty());
    }
}
