//! Ordered two-way merge of candidate streams.
//!
//! The incremental index scans two sorted sources — the base B+-tree and
//! the in-memory delta run — and refinement must see one stream in the
//! exact order a monolithic tree would have produced. [`merge_sorted`]
//! performs that merge on a caller-supplied key projection; ties break
//! toward the base stream, which cannot occur for index scans (entry
//! sequence numbers make keys unique) but keeps the merge total.

/// Merges two key-sorted vectors into one, ordering by `key(item)`.
///
/// Both inputs must already be sorted under the same projection; the
/// output is then sorted and stable (equal keys keep base-before-delta,
/// and within each input the original order).
pub fn merge_sorted<T, K: Ord, F: Fn(&T) -> K>(base: Vec<T>, delta: Vec<T>, key: F) -> Vec<T> {
    if delta.is_empty() {
        return base;
    }
    if base.is_empty() {
        return delta;
    }
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let mut b = base.into_iter().peekable();
    let mut d = delta.into_iter().peekable();
    loop {
        match (b.peek(), d.peek()) {
            (Some(x), Some(y)) => {
                if key(x) <= key(y) {
                    out.push(b.next().unwrap());
                } else {
                    out.push(d.next().unwrap());
                }
            }
            (Some(_), None) => {
                out.extend(b);
                break;
            }
            (None, Some(_)) => {
                out.extend(d);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_into_global_order() {
        let base = vec![(1u32, 'b'), (4, 'b'), (6, 'b')];
        let delta = vec![(2u32, 'd'), (4, 'd'), (9, 'd')];
        let merged = merge_sorted(base, delta, |&(k, _)| k);
        assert_eq!(
            merged,
            vec![(1, 'b'), (2, 'd'), (4, 'b'), (4, 'd'), (6, 'b'), (9, 'd')]
        );
    }

    #[test]
    fn empty_sides_pass_through() {
        let base = vec![1, 2, 3];
        assert_eq!(merge_sorted(base.clone(), vec![], |&k| k), vec![1, 2, 3]);
        assert_eq!(merge_sorted(vec![], base, |&k| k), vec![1, 2, 3]);
        let none: Vec<i32> = merge_sorted(vec![], vec![], |&k| k);
        assert!(none.is_empty());
    }
}
