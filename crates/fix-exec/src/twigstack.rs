//! TwigStack — the holistic twig join (Bruno, Koudas, Srivastava; SIGMOD
//! 2002), the flagship of the operator family FIX positions itself
//! against (Section 7).
//!
//! This implementation evaluates twigs under **descendant-edge semantics**
//! (every query edge is `//`), the setting in which TwigStack's guarantee
//! holds: an element is pushed iff it participates in at least one
//! root-to-leaf path solution, so the filter phase alone is optimal (no
//! useless intermediate results). The final merge is performed by
//! structural semi-joins over the surviving streams, and the filter's
//! push/scan counters are exposed so benches can show the holistic
//! pruning at work.

use fix_obs::{MetricsRegistry, Reportable};
use fix_xml::{Document, NodeId, Region, RegionIndex};
use fix_xpath::TwigQuery;

use crate::nok::value_matches;
use crate::structjoin::{semijoin_ancestors, semijoin_descendants};

/// Work counters of the filter phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwigStackStats {
    /// Elements read from the input streams.
    pub scanned: usize,
    /// Elements pushed (each participates in ≥ 1 path solution).
    pub pushed: usize,
}

impl Reportable for TwigStackStats {
    /// Adds this evaluation's work to the cumulative counters (one report
    /// per evaluation — these are per-run deltas, not levels).
    fn report(&self, registry: &MetricsRegistry) {
        registry
            .counter("fix_twigstack_scanned_total")
            .add(self.scanned as u64);
        registry
            .counter("fix_twigstack_pushed_total")
            .add(self.pushed as u64);
    }
}

/// A sentinel "end of stream" region.
const EOS: Region = Region {
    start: u32::MAX,
    end: u32::MAX,
    level: u32::MAX,
};

struct Machine<'a> {
    q: &'a TwigQuery,
    parent: Vec<usize>,
    streams: Vec<Vec<Region>>,
    pos: Vec<usize>,
    stacks: Vec<Vec<Region>>,
    survivors: Vec<Vec<Region>>,
    stats: TwigStackStats,
}

impl Machine<'_> {
    fn next(&self, qi: usize) -> Region {
        self.streams[qi].get(self.pos[qi]).copied().unwrap_or(EOS)
    }

    fn advance(&mut self, qi: usize) {
        self.pos[qi] += 1;
        self.stats.scanned += 1;
    }

    fn is_leaf(&self, qi: usize) -> bool {
        self.q.nodes[qi].children.is_empty()
    }

    /// The classic `getNext`: returns a query node whose head element is
    /// guaranteed to have a descendant extension (a match of its subtree
    /// among the current stream heads).
    fn get_next(&mut self, qi: usize) -> usize {
        if self.is_leaf(qi) {
            return qi;
        }
        let children = self.q.nodes[qi].children.clone();
        let mut min_child = children[0];
        let mut max_child = children[0];
        for &c in &children {
            let n = self.get_next(c);
            if n != c {
                return n;
            }
            if self.next(c).start < self.next(min_child).start {
                min_child = c;
            }
            if self.next(c).start > self.next(max_child).start {
                max_child = c;
            }
        }
        // Skip q-elements that end before max_child's head starts — they
        // cannot contain a full child set. When a child stream is
        // exhausted (head = EOS) no *new* q-solutions exist, but sibling
        // branches must keep draining so elements owed to already-stacked
        // ancestors are still pushed; the merge discards the rest.
        while self.next(qi) != EOS && self.next(qi).end <= self.next(max_child).start {
            self.advance(qi);
        }
        if self.next(qi).start < self.next(min_child).start {
            qi
        } else {
            min_child
        }
    }

    fn clean_stack(&mut self, qi: usize, next_start: u32) {
        while let Some(top) = self.stacks[qi].last() {
            if top.end <= next_start {
                self.stacks[qi].pop();
            } else {
                break;
            }
        }
    }

    fn run(&mut self) {
        let root = self.q.root();
        let qn = self.q.nodes.len();
        loop {
            let mut qi = self.get_next(root);
            if self.next(qi) == EOS {
                // `getNext` has run out of extensible heads, but sibling
                // streams may still hold elements owed to already-stacked
                // ancestors. Drain them in global document order; the push
                // condition (parent stack non-empty) keeps the no-false-
                // negative guarantee, and the merge discards the rest.
                match (0..qn)
                    .filter(|&i| self.next(i) != EOS)
                    .min_by_key(|&i| self.next(i).start)
                {
                    Some(i) => qi = i,
                    None => break,
                }
            }
            let head = self.next(qi);
            let p = self.parent[qi];
            if p != usize::MAX {
                self.clean_stack(p, head.start);
            }
            if p == usize::MAX || !self.stacks[p].is_empty() {
                self.clean_stack(qi, head.start);
                self.stacks[qi].push(head);
                self.survivors[qi].push(head);
                self.stats.pushed += 1;
                self.advance(qi);
                if self.is_leaf(qi) {
                    self.stacks[qi].pop();
                }
            } else {
                self.advance(qi);
            }
        }
    }
}

/// Runs the filter phase: per query node, the document-ordered elements
/// that participate in at least one root-to-leaf path solution.
pub fn twigstack_filter(
    doc: &Document,
    regions: &RegionIndex,
    q: &TwigQuery,
) -> (Vec<Vec<Region>>, TwigStackStats) {
    let qn = q.nodes.len();
    let mut parent = vec![usize::MAX; qn];
    for (i, node) in q.nodes.iter().enumerate() {
        for &c in &node.children {
            parent[c] = i;
        }
    }
    let streams: Vec<Vec<Region>> = q
        .nodes
        .iter()
        .map(|n| {
            let mut s: Vec<Region> = regions.stream(n.label).to_vec();
            if let Some(v) = &n.value {
                s.retain(|r| value_matches(doc, r.node(), v));
            }
            s
        })
        .collect();
    let mut m = Machine {
        q,
        parent,
        streams,
        pos: vec![0; qn],
        stacks: vec![Vec::new(); qn],
        survivors: vec![Vec::new(); qn],
        stats: TwigStackStats::default(),
    };
    m.run();
    (std::mem::take(&mut m.survivors), m.stats)
}

/// Full evaluation under descendant-edge semantics: filter, then merge the
/// surviving streams with ancestor/descendant semi-joins, returning the
/// output node's matches in document order.
pub fn eval_twigstack(doc: &Document, regions: &RegionIndex, q: &TwigQuery) -> Vec<NodeId> {
    let (survivors, _) = twigstack_filter(doc, regions, q);
    // Bottom-up: sat[qi] = survivors satisfying the whole subtree.
    let qn = q.nodes.len();
    let mut sat: Vec<Option<Vec<Region>>> = vec![None; qn];
    fn compute(
        q: &TwigQuery,
        survivors: &[Vec<Region>],
        qi: usize,
        sat: &mut Vec<Option<Vec<Region>>>,
    ) {
        if sat[qi].is_some() {
            return;
        }
        let mut cur = survivors[qi].clone();
        for &qc in &q.nodes[qi].children {
            compute(q, survivors, qc, sat);
            cur = semijoin_ancestors(&cur, sat[qc].as_ref().expect("computed"), false);
        }
        sat[qi] = Some(cur);
    }
    compute(q, &survivors, q.root(), &mut sat);

    // Top-down spine narrowing (descendant semantics).
    let spine = {
        let mut parent = vec![usize::MAX; qn];
        for (i, node) in q.nodes.iter().enumerate() {
            for &c in &node.children {
                parent[c] = i;
            }
        }
        let mut s = vec![q.output];
        let mut cur = q.output;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            s.push(cur);
        }
        s.reverse();
        s
    };
    let mut current = sat[spine[0]].clone().expect("root computed");
    for &qs in spine.iter().skip(1) {
        current = semijoin_descendants(&current, sat[qs].as_ref().expect("computed"), false);
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().map(|r| r.node()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable};
    use fix_xpath::{parse_path, Axis, PathExpr, Predicate, Step};

    fn setup(xml: &str) -> (Document, RegionIndex, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let r = RegionIndex::build(&d);
        (d, r, lt)
    }

    /// Rewrites a child-edged twig path into its descendant-edged
    /// equivalent for the NoK cross-check (`/a/b[c]` → `//a//b[.//c]`).
    fn to_descendant(path: &PathExpr) -> PathExpr {
        fn steps(ss: &[Step]) -> Vec<Step> {
            ss.iter()
                .map(|s| Step {
                    axis: Axis::Descendant,
                    name: s.name.clone(),
                    predicates: s
                        .predicates
                        .iter()
                        .map(|p| Predicate {
                            path: PathExpr {
                                steps: steps(&p.path.steps),
                            },
                            value: p.value.clone(),
                        })
                        .collect(),
                })
                .collect()
        }
        PathExpr {
            steps: steps(&path.steps),
        }
    }

    fn check(xml: &str, queries: &[&str]) {
        let (d, r, lt) = setup(xml);
        for qs in queries {
            let p = parse_path(qs).unwrap();
            let q = match TwigQuery::from_path(&p, &lt) {
                Ok(q) => q,
                Err(_) => continue,
            };
            let got: Vec<u32> = eval_twigstack(&d, &r, &q).iter().map(|n| n.0).collect();
            let want: Vec<u32> = crate::nok::eval_path(&d, &lt, &to_descendant(&p))
                .iter()
                .map(|n| n.0)
                .collect();
            assert_eq!(got, want, "disagreement on {qs} (descendant semantics)");
        }
    }

    #[test]
    fn agrees_with_navigational_descendant_semantics() {
        check(
            "<bib>\
             <article><author><email/></author><title>X</title><ee/></article>\
             <article><author><phone/><email/></author><title>Y</title></article>\
             <book><author><phone/></author><title>Z</title></book>\
             </bib>",
            &[
                "//bib/article",
                "//author[phone][email]",
                "//article[ee]/title",
                "//article[author/phone]/title",
                "//bib/author/email",
            ],
        );
    }

    #[test]
    fn recursive_descendants() {
        check(
            "<s><s><np><pp><np/></pp></np><s><np/><vp/></s></s><vp/></s>",
            &["//s/np", "//s[np][vp]", "//s/s/np", "//np/np"],
        );
    }

    #[test]
    fn filter_is_selective() {
        // Elements that cannot participate in a solution are not pushed.
        let (d, r, lt) = setup("<a><b/><b><c/></b><x><b/></x><b><c/></b></a>");
        let p = parse_path("//a/b/c").unwrap();
        let q = TwigQuery::from_path(&p, &lt).unwrap();
        let (survivors, stats) = twigstack_filter(&d, &r, &q);
        // b-survivors: only the two b's with a c below.
        let b_idx = q
            .nodes
            .iter()
            .position(|n| n.label == lt.lookup("b").unwrap())
            .unwrap();
        assert_eq!(survivors[b_idx].len(), 2, "{survivors:?}");
        assert!(stats.pushed < stats.scanned);
    }

    #[test]
    fn value_constraints_apply() {
        let (d, r, lt) = setup("<dblp><p><pub>Springer</pub></p><p><pub>ACM</pub></p></dblp>");
        let path = parse_path(r#"//p[pub="Springer"]"#).unwrap();
        let q = TwigQuery::from_path(&path, &lt).unwrap();
        assert_eq!(eval_twigstack(&d, &r, &q).len(), 1);
    }

    #[test]
    fn empty_stream_short_circuits() {
        let (d, r, lt) = setup("<a><b/></a>");
        let mut lt2 = lt.clone();
        let path = parse_path("//a/zzz").unwrap();
        let q = TwigQuery::from_path_interning(&path, &mut lt2).unwrap();
        assert!(eval_twigstack(&d, &r, &q).is_empty());
    }
}
