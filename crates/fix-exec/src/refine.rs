//! A refinement entry point over shared (`&`-only) state.
//!
//! The index's refinement phase validates each candidate by evaluating the
//! query from the candidate's anchor. The evaluators themselves
//! ([`eval_path`], [`eval_twig`]) are
//! pure functions over borrowed data, but choosing *which* evaluator to run
//! — and the rooted-anchor special case — used to live inline in the
//! caller's candidate loop, which tied it to one thread. [`Refiner`]
//! packages that decision once per query into an immutable, `Send + Sync`
//! value, so any number of worker threads can validate candidates
//! concurrently against the same instance.

use fix_xml::{Document, LabelTable, NodeId};
use fix_xpath::{Axis, PathExpr, TwigQuery};

use crate::nok::{eval_path, eval_path_from};
use crate::twig::eval_twig;

/// A per-query refinement context: the (already normalized) path, the
/// optional precompiled bottom-up twig matcher, and the anchoring rules.
/// All state is immutable after construction — share it by `&` across as
/// many threads as candidates warrant.
pub struct Refiner<'a> {
    labels: &'a LabelTable,
    path: PathExpr,
    /// Precompiled bottom-up matcher (whole-unit refinement only; `None`
    /// falls back to navigational evaluation).
    twig: Option<TwigQuery>,
    /// The index's subpattern depth limit (`0` = whole-document units).
    depth_limit: usize,
    /// True if the query is rooted (`/a/...`): anchors other than the
    /// document root are false positives by construction.
    rooted: bool,
}

impl<'a> Refiner<'a> {
    /// Builds the refinement context for one query. `use_twig` selects the
    /// bottom-up structural matcher where it applies (whole-document units
    /// and a path that compiles to a twig); otherwise the NoK-style
    /// navigator is used.
    pub fn new(
        labels: &'a LabelTable,
        path: &PathExpr,
        depth_limit: usize,
        use_twig: bool,
    ) -> Self {
        let twig = if use_twig && depth_limit == 0 {
            TwigQuery::from_path(path, labels).ok()
        } else {
            None
        };
        Self {
            labels,
            path: path.clone(),
            twig,
            depth_limit,
            rooted: path.steps.first().map(|s| s.axis) == Some(Axis::Child),
        }
    }

    /// The path this refiner validates against.
    pub fn path(&self) -> &PathExpr {
        &self.path
    }

    /// Validates one candidate: evaluates the query over `doc`, anchored at
    /// `anchor` in large-document mode, and returns the matched output
    /// nodes (empty = false positive).
    pub fn matches_at(&self, doc: &Document, anchor: NodeId) -> Vec<NodeId> {
        if self.depth_limit == 0 {
            match &self.twig {
                Some(t) => eval_twig(doc, t),
                None => eval_path(doc, self.labels, &self.path),
            }
        } else if self.rooted && anchor != doc.root() {
            // A rooted query can only anchor at the document root; any
            // other entry in the partition is a false positive.
            Vec::new()
        } else {
            eval_path_from(doc, self.labels, &self.path, anchor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::parse_document;
    use fix_xpath::parse_path;

    fn setup(xml: &str) -> (Document, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        (d, lt)
    }

    #[test]
    fn refiner_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Refiner<'_>>();
    }

    #[test]
    fn whole_unit_twig_and_nok_agree() {
        let (d, lt) = setup("<bib><article><author/><ee/></article><book><author/></book></bib>");
        let path = parse_path("//article[author]/ee").unwrap();
        let nav = Refiner::new(&lt, &path, 0, false);
        let twig = Refiner::new(&lt, &path, 0, true);
        let anchor = d.root();
        assert_eq!(nav.matches_at(&d, anchor), twig.matches_at(&d, anchor));
        assert_eq!(nav.matches_at(&d, anchor).len(), 1);
    }

    #[test]
    fn rooted_queries_reject_non_root_anchors() {
        let (d, lt) = setup("<a><b><c/></b></a>");
        let path = parse_path("/a/b/c").unwrap();
        let r = Refiner::new(&lt, &path, 3, false);
        assert_eq!(r.matches_at(&d, d.root()).len(), 1);
        let b = d.first_child(d.root()).unwrap();
        assert!(r.matches_at(&d, b).is_empty());
    }

    #[test]
    fn anchored_evaluation_scopes_to_the_subtree() {
        let (d, lt) = setup("<a><b><c/></b><b/></a>");
        let path = parse_path("//b/c").unwrap();
        let r = Refiner::new(&lt, &path, 2, false);
        let first_b = d.first_child(d.root()).unwrap();
        assert_eq!(r.matches_at(&d, first_b).len(), 1);
    }

    #[test]
    fn concurrent_refinement_matches_serial() {
        let (d, lt) = setup("<bib><article><author/><ee/></article></bib>");
        let path = parse_path("//article/author").unwrap();
        let r = Refiner::new(&lt, &path, 0, false);
        let serial = r.matches_at(&d, d.root());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                let d = &d;
                let serial = &serial;
                s.spawn(move || {
                    for _ in 0..25 {
                        assert_eq!(&r.matches_at(d, d.root()), serial);
                    }
                });
            }
        });
    }
}
