//! Stack-based structural joins (Al-Khalifa et al., ICDE 2002) and a twig
//! evaluator composed from them.
//!
//! The binary stack-tree join merges two document-ordered region lists in
//! `O(|A| + |D| + |output|)`. Composing *pair* joins for a twig suffers
//! the intermediate-result blowup that motivated holistic twig joins
//! (Section 7's narrative); the twig evaluator here therefore composes
//! **semi-joins** bottom-up (keep the ancestor iff it has a qualifying
//! child/descendant), which keeps intermediates linear while remaining a
//! faithful member of the structural-join family. [`join_pairs`] is kept
//! for the bench that demonstrates the blowup.

use fix_xml::{Document, NodeId, Region, RegionIndex};
use fix_xpath::{Axis, TwigQuery};

use crate::nok::value_matches;

/// Binary structural join producing `(ancestor, descendant)` pairs
/// (`parent_only` restricts to parent-child). Inputs must be in document
/// order; output is ordered by descendant.
pub fn join_pairs(anc: &[Region], desc: &[Region], parent_only: bool) -> Vec<(Region, Region)> {
    let mut out = Vec::new();
    let mut stack: Vec<Region> = Vec::new();
    let mut ai = 0usize;
    for d in desc {
        // Pop finished ancestors, push enclosing ones.
        while ai < anc.len() && anc[ai].start < d.start {
            while let Some(top) = stack.last() {
                if top.end <= anc[ai].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(anc[ai]);
            ai += 1;
        }
        while let Some(top) = stack.last() {
            if top.end <= d.start {
                stack.pop();
            } else {
                break;
            }
        }
        for a in &stack {
            if a.is_ancestor_of(d) && (!parent_only || a.level + 1 == d.level) {
                out.push((*a, *d));
            }
        }
    }
    out
}

/// Structural **semi-join**: the ancestors (in document order) that have at
/// least one qualifying descendant (or child, with `parent_only`).
pub fn semijoin_ancestors(anc: &[Region], desc: &[Region], parent_only: bool) -> Vec<Region> {
    let mut keep = vec![false; anc.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut ai = 0usize;
    for d in desc {
        while ai < anc.len() && anc[ai].start < d.start {
            while let Some(&top) = stack.last() {
                if anc[top].end <= anc[ai].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(ai);
            ai += 1;
        }
        while let Some(&top) = stack.last() {
            if anc[top].end <= d.start {
                stack.pop();
            } else {
                break;
            }
        }
        if parent_only {
            // The parent is the innermost enclosing ancestor with the
            // right level.
            for &i in stack.iter().rev() {
                if anc[i].level + 1 == d.level && anc[i].is_ancestor_of(d) {
                    keep[i] = true;
                    break;
                }
                if anc[i].level < d.level.saturating_sub(1) {
                    break;
                }
            }
        } else {
            for &i in &stack {
                if anc[i].is_ancestor_of(d) {
                    keep[i] = true;
                }
            }
        }
    }
    anc.iter()
        .zip(keep)
        .filter_map(|(a, k)| k.then_some(*a))
        .collect()
}

/// Structural semi-join in the other direction: the descendants that have
/// a qualifying ancestor/parent.
pub fn semijoin_descendants(anc: &[Region], desc: &[Region], parent_only: bool) -> Vec<Region> {
    let mut out = Vec::new();
    let mut stack: Vec<Region> = Vec::new();
    let mut ai = 0usize;
    for d in desc {
        while ai < anc.len() && anc[ai].start < d.start {
            while let Some(top) = stack.last() {
                if top.end <= anc[ai].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(anc[ai]);
            ai += 1;
        }
        while let Some(top) = stack.last() {
            if top.end <= d.start {
                stack.pop();
            } else {
                break;
            }
        }
        let hit = stack
            .iter()
            .any(|a| a.is_ancestor_of(d) && (!parent_only || a.level + 1 == d.level));
        if hit {
            out.push(*d);
        }
    }
    out
}

/// Evaluates a twig query with a bottom-up semi-join plan followed by a
/// top-down spine narrowing. Agrees with the navigational and DP
/// evaluators on all twig queries (cross-checked in tests); exposed as an
/// alternative refinement operator and baseline.
pub fn eval_structural(doc: &Document, regions: &RegionIndex, q: &TwigQuery) -> Vec<NodeId> {
    // Bottom-up: sat[qi] = document-ordered regions satisfying the query
    // subtree rooted at qi.
    let qn = q.nodes.len();
    let mut sat: Vec<Option<Vec<Region>>> = vec![None; qn];
    // Children before parents: compute by recursion.
    fn compute(
        doc: &Document,
        regions: &RegionIndex,
        q: &TwigQuery,
        qi: usize,
        sat: &mut Vec<Option<Vec<Region>>>,
    ) {
        if sat[qi].is_some() {
            return;
        }
        let qnode = &q.nodes[qi];
        let mut cur: Vec<Region> = regions.stream(qnode.label).to_vec();
        if let Some(v) = &qnode.value {
            cur.retain(|r| value_matches(doc, r.node(), v));
        }
        for &qc in &qnode.children {
            compute(doc, regions, q, qc, sat);
            let child_sat = sat[qc].as_ref().expect("computed");
            cur = semijoin_ancestors(&cur, child_sat, true);
        }
        sat[qi] = Some(cur);
    }
    compute(doc, regions, q, q.root(), &mut sat);

    // Top-down narrowing along the spine.
    let spine = {
        let mut parent = vec![usize::MAX; qn];
        for (i, node) in q.nodes.iter().enumerate() {
            for &c in &node.children {
                parent[c] = i;
            }
        }
        let mut s = vec![q.output];
        let mut cur = q.output;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            s.push(cur);
        }
        s.reverse();
        s
    };
    // Make sure every spine node's sat set exists (compute() above only
    // fills the root's subtree, which includes the whole spine).
    let mut current: Vec<Region> = sat[spine[0]].clone().expect("spine root computed");
    if q.root_axis == Axis::Child {
        current.retain(|r| r.node() == doc.root());
    }
    for &qs in spine.iter().skip(1) {
        let child_sat = sat[qs].as_ref().expect("spine computed");
        current = semijoin_descendants(&current, child_sat, true);
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().map(|r| r.node()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable};
    use fix_xpath::parse_path;

    fn setup(xml: &str) -> (Document, RegionIndex, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let r = RegionIndex::build(&d);
        (d, r, lt)
    }

    #[test]
    fn pair_join_finds_all_pairs() {
        let (_, r, lt) = setup("<a><b><a><b/></a></b><b/></a>");
        let a = r.stream(lt.lookup("a").unwrap());
        let b = r.stream(lt.lookup("b").unwrap());
        // Ancestor-descendant: outer a has 3 b-descendants; inner a has 1.
        let ad = join_pairs(a, b, false);
        assert_eq!(ad.len(), 4);
        // Parent-child: outer a has b(1) and b(last); inner a has inner b.
        let pc = join_pairs(a, b, true);
        assert_eq!(pc.len(), 3);
    }

    #[test]
    fn semijoins_match_pair_join_projections() {
        let (_, r, lt) = setup("<a><b><c/></b><b/><a><b><c/></b></a><c/></a>");
        let a = r.stream(lt.lookup("a").unwrap());
        let b = r.stream(lt.lookup("b").unwrap());
        let c = r.stream(lt.lookup("c").unwrap());
        for parent_only in [false, true] {
            let pairs = join_pairs(b, c, parent_only);
            let mut anc: Vec<u32> = pairs.iter().map(|(x, _)| x.start).collect();
            anc.sort_unstable();
            anc.dedup();
            let semi: Vec<u32> = semijoin_ancestors(b, c, parent_only)
                .iter()
                .map(|x| x.start)
                .collect();
            assert_eq!(anc, semi, "ancestor projection, parent_only={parent_only}");
            let mut desc: Vec<u32> = pairs.iter().map(|(_, y)| y.start).collect();
            desc.sort_unstable();
            desc.dedup();
            let semi: Vec<u32> = semijoin_descendants(b, c, parent_only)
                .iter()
                .map(|x| x.start)
                .collect();
            assert_eq!(
                desc, semi,
                "descendant projection, parent_only={parent_only}"
            );
        }
        let _ = a;
    }

    #[test]
    fn structural_twig_agrees_with_nok() {
        let xml = "<bib>\
            <article><author><email/></author><title>X</title><ee/></article>\
            <article><author><phone/><email/></author><title>Y</title></article>\
            <book><author><phone/></author><title>Z</title></book>\
        </bib>";
        let (d, r, lt) = setup(xml);
        for qs in [
            "/bib/article",
            "//author[phone][email]",
            "//article[ee]/title",
            "//article[author/phone]/title",
            "//book[author]",
            "//bib/article/author/email",
        ] {
            let p = parse_path(qs).unwrap();
            let q = TwigQuery::from_path(&p, &lt).unwrap();
            let got = eval_structural(&d, &r, &q);
            let want = crate::nok::eval_path(&d, &lt, &p);
            assert_eq!(got, want, "disagreement on {qs}");
        }
    }

    #[test]
    fn recursive_labels_stress() {
        let xml = "<s><s><np><pp><np/></pp></np><s><np/><vp/></s></s><vp/></s>";
        let (d, r, lt) = setup(xml);
        for qs in ["//s/s[np]", "//s[np][vp]", "//np/pp/np", "/s[vp]/s"] {
            let p = parse_path(qs).unwrap();
            let q = TwigQuery::from_path(&p, &lt).unwrap();
            assert_eq!(
                eval_structural(&d, &r, &q),
                crate::nok::eval_path(&d, &lt, &p),
                "disagreement on {qs}"
            );
        }
    }

    #[test]
    fn value_twigs_filter_streams() {
        let xml = "<dblp><proceedings><publisher>Springer</publisher></proceedings>\
                   <proceedings><publisher>ACM</publisher></proceedings></dblp>";
        let (d, r, lt) = setup(xml);
        let p = parse_path(r#"//proceedings[publisher="Springer"]"#).unwrap();
        let q = TwigQuery::from_path(&p, &lt).unwrap();
        assert_eq!(eval_structural(&d, &r, &q).len(), 1);
    }
}
