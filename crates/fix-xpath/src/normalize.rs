//! Query normalization: a small logical-rewrite pass run before planning.
//!
//! Two semantics-preserving rewrites on the twig fragment:
//!
//! 1. **Duplicate elimination** — `a[b][b]/c` ⇒ `a[b]/c` (predicates are
//!    existential, so repetition is idempotent).
//! 2. **Implication pruning** — a predicate implied by a stronger sibling
//!    is dropped: `a[b][b/c]` ⇒ `a[b/c]` and `a[b][b="x"]` ⇒ `a[b="x"]`
//!    (the match witnessing the stronger predicate witnesses the weaker
//!    one).
//!
//! Both run recursively through nested predicates. Canonical predicate
//! ordering makes the output deterministic, which also benefits feature
//! extraction (syntactically different but equal queries produce the same
//! pattern and hit the same memoized features).

use crate::ast::{Axis, PathExpr, Predicate, Step};

/// Normalizes a path expression (see module docs). Purely structural —
/// result set is provably unchanged (and property-tested against all
/// evaluators).
pub fn normalize(path: &PathExpr) -> PathExpr {
    PathExpr {
        steps: path.steps.iter().map(normalize_step).collect(),
    }
}

fn normalize_step(step: &Step) -> Step {
    let mut predicates: Vec<Predicate> = step
        .predicates
        .iter()
        .map(|p| Predicate {
            path: normalize(&p.path),
            value: p.value.clone(),
        })
        .collect();
    // Canonical order first so dedup catches syntactic duplicates.
    predicates.sort_by_key(render_pred);
    predicates.dedup();
    // Implication pruning: drop any predicate implied by another one.
    let mut kept: Vec<Predicate> = Vec::with_capacity(predicates.len());
    for (i, p) in predicates.iter().enumerate() {
        let implied = predicates
            .iter()
            .enumerate()
            .any(|(j, q)| i != j && implies(q, p) && !(implies(p, q) && j > i));
        if !implied {
            kept.push(p.clone());
        }
    }
    Step {
        axis: step.axis,
        name: step.name.clone(),
        predicates: kept,
    }
}

fn render_pred(p: &Predicate) -> String {
    format!("{p:?}")
}

/// True if a match of `strong` always witnesses `weak` (so `weak` is
/// redundant next to `strong`). Conservative: descendant axes anywhere in
/// either predicate disable the check.
pub fn implies(strong: &Predicate, weak: &Predicate) -> bool {
    // [x = "v"] implies [x]; [x] does not imply [x = "v"].
    let value_ok = match (&strong.value, &weak.value) {
        (_, None) => true,
        (Some(a), Some(b)) => a == b,
        (None, Some(_)) => false,
    };
    value_ok && chain_implies(&strong.path.steps, &weak.path.steps, weak.value.as_deref())
}

/// Does the chain `strong` (with its own predicates) imply the chain
/// `weak` (whose last step may carry `weak_value`)? Both are predicate
/// paths: linear spines with nested predicates.
fn chain_implies(strong: &[Step], weak: &[Step], weak_value: Option<&str>) -> bool {
    match (strong.split_first(), weak.split_first()) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some((s, s_rest)), Some((w, w_rest))) => {
            if s.axis != Axis::Child || w.axis != Axis::Child || s.name != w.name {
                return false;
            }
            // If the weak chain ends here with a value test, the strong
            // chain must also end here (a longer strong chain constrains a
            // *descendant*, not this node's text) — unless the value test
            // is discharged through a predicate below.
            let ends_with_value = w_rest.is_empty() && weak_value.is_some();
            // Existential constraints available at this strong node: its
            // predicates plus its own continuation chain.
            let strong_conts: Vec<Predicate> = s
                .predicates
                .iter()
                .cloned()
                .chain((!s_rest.is_empty()).then(|| Predicate {
                    path: PathExpr {
                        steps: s_rest.to_vec(),
                    },
                    value: None,
                }))
                .collect();
            let preds_ok = w
                .predicates
                .iter()
                .all(|wp| strong_conts.iter().any(|sp| implies(sp, wp)));
            if !preds_ok {
                return false;
            }
            if ends_with_value {
                return s_rest.is_empty();
            }
            // The weak continuation is satisfied either by the strong
            // continuation (chain-wise) or by one of the strong step's own
            // predicates (e.g. `[b[c]]` implies `[b/c]`).
            if w_rest.is_empty() {
                return true;
            }
            let w_cont = Predicate {
                path: PathExpr {
                    steps: w_rest.to_vec(),
                },
                value: weak_value.map(str::to_owned),
            };
            chain_implies(s_rest, w_rest, weak_value)
                || s.predicates.iter().any(|sp| implies(sp, &w_cont))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn norm(s: &str) -> String {
        normalize(&parse_path(s).unwrap()).to_string()
    }

    #[test]
    fn duplicate_predicates_collapse() {
        assert_eq!(norm("//a[b][b]/c"), "//a[b]/c");
        assert_eq!(norm("//a[b][c][b][c]"), "//a[b][c]");
    }

    #[test]
    fn implied_predicates_are_dropped() {
        assert_eq!(norm("//a[b][b/c]"), "//a[b/c]");
        assert_eq!(norm(r#"//a[b][b="x"]"#), r#"//a[b="x"]"#);
        assert_eq!(norm("//a[b][b[c][d]]"), "//a[b[c][d]]");
        // Nested implication.
        assert_eq!(norm("//a[b[c]][b[c/d]]"), "//a[b[c/d]]");
    }

    #[test]
    fn non_implications_are_kept() {
        // Different branches are independent.
        assert_eq!(norm("//a[b/c][b/d]"), "//a[b/c][b/d]");
        // A value test is not implied by a longer structural chain.
        assert_eq!(norm(r#"//a[b="x"][b/c]"#), r#"//a[b/c][b="x"]"#);
        // [b="x"] and [b="y"] are both kept.
        assert_eq!(norm(r#"//a[b="x"][b="y"]"#), r#"//a[b="x"][b="y"]"#);
    }

    #[test]
    fn descendant_predicates_are_left_alone() {
        assert_eq!(
            norm("//a[.//b][.//b]"),
            "//a[.//b]",
            "exact duplicates still dedup"
        );
        // But no implication reasoning across `//`.
        assert_eq!(norm("//a[.//b][b]"), "//a[b][.//b]");
    }

    #[test]
    fn normalization_is_idempotent() {
        for q in [
            "//a[b][b/c][d]/e",
            r#"//x[y="v"][y][z[w][w/q]]"#,
            "//a[b][c][b]",
        ] {
            let once = norm(q);
            let twice = normalize(&parse_path(&once).unwrap()).to_string();
            assert_eq!(once, twice, "not idempotent on {q}");
        }
    }

    #[test]
    fn nested_predicate_forms_are_recognized() {
        // [b[c]] and [b/c] are the same constraint; the canonical
        // representative (first in predicate sort order) survives.
        assert_eq!(norm("//a[b/c][b[c]]"), "//a[b[c]]");
    }

    #[test]
    fn spine_is_untouched() {
        assert_eq!(norm("//a/b/c"), "//a/b/c");
        assert_eq!(norm("/a/b[x]/c"), "/a/b[x]/c");
    }
}
