//! Twig queries as label-interned trees.
//!
//! A [`TwigQuery`] is the tree form of a twig path expression
//! (Definition 1, optionally extended with value-equality leaves per
//! Section 4.6): each NameTest becomes a node, `/`-axes become edges, and
//! the last spine step is marked as the *output* node (the node whose
//! matches the query returns). The leading axis (`/` or `//`) is recorded
//! separately — it governs whether the twig root must be the document root.

use std::fmt;

use fix_xml::{LabelId, LabelTable};

use crate::ast::{Axis, PathExpr, Step};

/// One node of a twig query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryNode {
    /// The interned element label this node must match.
    pub label: LabelId,
    /// Child twig nodes (indices into [`TwigQuery::nodes`]).
    pub children: Vec<usize>,
    /// If set, the matched element must contain a text child equal to this
    /// string (value-equality predicate).
    pub value: Option<String>,
}

/// Why a path expression could not be converted into a twig query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwigError {
    /// The expression violates Definition 1 (interior `//`, etc.).
    NotATwig,
    /// A NameTest mentions a label absent from the database's label table.
    /// Such a query cannot match anything (useful short-circuit).
    UnknownLabel(String),
}

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwigError::NotATwig => write!(f, "path expression is not a twig query"),
            TwigError::UnknownLabel(l) => write!(f, "label `{l}` does not occur in the database"),
        }
    }
}

impl std::error::Error for TwigError {}

/// A twig query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigQuery {
    /// All nodes; index 0 is the root.
    pub nodes: Vec<QueryNode>,
    /// Index of the output (result) node — the last step of the main spine.
    pub output: usize,
    /// The leading axis: `//` (anywhere) or `/` (root must be the document
    /// root element).
    pub root_axis: Axis,
}

/// How to resolve NameTest strings to label ids.
enum Resolver<'a> {
    /// Fail with [`TwigError::UnknownLabel`] on unseen labels.
    Lookup(&'a LabelTable),
    /// Intern unseen labels (used when building queries before data).
    Intern(&'a mut LabelTable),
}

impl Resolver<'_> {
    fn resolve(&mut self, name: &str) -> Result<LabelId, TwigError> {
        match self {
            Resolver::Lookup(t) => t
                .lookup(name)
                .ok_or_else(|| TwigError::UnknownLabel(name.to_owned())),
            Resolver::Intern(t) => Ok(t.intern(name)),
        }
    }
}

impl TwigQuery {
    /// Converts a (value-)twig path expression, resolving labels against an
    /// existing table. Queries naming unknown labels are rejected with
    /// [`TwigError::UnknownLabel`] — they cannot match any document.
    pub fn from_path(path: &PathExpr, labels: &LabelTable) -> Result<Self, TwigError> {
        Self::build(path, Resolver::Lookup(labels))
    }

    /// Converts a (value-)twig path expression, interning labels as needed.
    pub fn from_path_interning(
        path: &PathExpr,
        labels: &mut LabelTable,
    ) -> Result<Self, TwigError> {
        Self::build(path, Resolver::Intern(labels))
    }

    fn build(path: &PathExpr, mut r: Resolver<'_>) -> Result<Self, TwigError> {
        if !path.is_twig_with_values() {
            return Err(TwigError::NotATwig);
        }
        let root_axis = path.steps.first().map(|s| s.axis).unwrap_or(Axis::Child);
        let mut q = TwigQuery {
            nodes: Vec::new(),
            output: 0,
            root_axis,
        };
        let out = q.add_spine(&path.steps, &mut r)?;
        q.output = out;
        Ok(q)
    }

    /// Adds a spine of steps under no parent (first call) and returns the
    /// index of the deepest spine node.
    fn add_spine(&mut self, steps: &[Step], r: &mut Resolver<'_>) -> Result<usize, TwigError> {
        let mut parent: Option<usize> = None;
        let mut last = 0usize;
        for step in steps {
            let label = r.resolve(&step.name)?;
            let idx = self.nodes.len();
            self.nodes.push(QueryNode {
                label,
                children: Vec::new(),
                value: None,
            });
            if let Some(p) = parent {
                self.nodes[p].children.push(idx);
            }
            for pred in &step.predicates {
                if pred.path.steps.is_empty() {
                    return Err(TwigError::NotATwig);
                }
                let leaf = self.add_pred_spine(idx, &pred.path.steps, r)?;
                self.nodes[leaf].value = pred.value.clone();
            }
            parent = Some(idx);
            last = idx;
        }
        Ok(last)
    }

    /// Adds a predicate path under `parent`; returns the leaf node index.
    fn add_pred_spine(
        &mut self,
        parent: usize,
        steps: &[Step],
        r: &mut Resolver<'_>,
    ) -> Result<usize, TwigError> {
        let mut p = parent;
        let mut last = parent;
        for step in steps {
            let label = r.resolve(&step.name)?;
            let idx = self.nodes.len();
            self.nodes.push(QueryNode {
                label,
                children: Vec::new(),
                value: None,
            });
            self.nodes[p].children.push(idx);
            for pred in &step.predicates {
                let leaf = self.add_pred_spine(idx, &pred.path.steps, r)?;
                self.nodes[leaf].value = pred.value.clone();
            }
            p = idx;
            last = idx;
        }
        Ok(last)
    }

    /// The root node index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// The root's label.
    pub fn root_label(&self) -> LabelId {
        self.nodes[0].label
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the query is empty (never produced by the builders).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Depth of the twig (root = 1), counting a value leaf as one extra
    /// level (it becomes a child value-label node in the index).
    pub fn depth(&self) -> usize {
        fn rec(q: &TwigQuery, n: usize) -> usize {
            let node = &q.nodes[n];
            let below = node
                .children
                .iter()
                .map(|&c| rec(q, c))
                .max()
                .unwrap_or(0)
                .max(usize::from(node.value.is_some()));
            1 + below
        }
        rec(self, 0)
    }

    /// True if any node carries a value constraint.
    pub fn has_values(&self) -> bool {
        self.nodes.iter().any(|n| n.value.is_some())
    }

    /// A copy of the twig with all value constraints removed — the purely
    /// structural skeleton used when a value query is pruned through a
    /// structure-only index.
    pub fn strip_values(&self) -> TwigQuery {
        let mut q = self.clone();
        for n in &mut q.nodes {
            n.value = None;
        }
        q
    }

    /// Iterates `(parent, child)` label-id edges of the twig (value leaves
    /// excluded — the value extension adds them separately once hashed).
    pub fn edges(&self) -> impl Iterator<Item = (LabelId, LabelId)> + '_ {
        self.nodes.iter().enumerate().flat_map(move |(i, n)| {
            n.children
                .iter()
                .map(move |&c| (self.nodes[i].label, self.nodes[c].label))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn twig(s: &str) -> (TwigQuery, LabelTable) {
        let p = parse_path(s).unwrap();
        let mut lt = LabelTable::new();
        let q = TwigQuery::from_path_interning(&p, &mut lt).unwrap();
        (q, lt)
    }

    #[test]
    fn linear_path() {
        let (q, lt) = twig("//a/b/c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.root_label(), lt.lookup("a").unwrap());
        assert_eq!(q.output, 2);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.root_axis, Axis::Descendant);
    }

    #[test]
    fn branches_attach_to_their_step() {
        let (q, lt) = twig("//article[author]/ee");
        // article has children: author (pred) and ee (spine).
        let root = &q.nodes[0];
        assert_eq!(root.label, lt.lookup("article").unwrap());
        assert_eq!(root.children.len(), 2);
        let labels: Vec<_> = root.children.iter().map(|&c| q.nodes[c].label).collect();
        assert_eq!(
            labels,
            vec![lt.lookup("author").unwrap(), lt.lookup("ee").unwrap()]
        );
        // Output is the ee node.
        assert_eq!(q.nodes[q.output].label, lt.lookup("ee").unwrap());
    }

    #[test]
    fn multi_step_predicate() {
        let (q, lt) = twig("//item[mailbox/mail/text]/description");
        assert_eq!(q.depth(), 4);
        // Chain under item: mailbox -> mail -> text.
        let item = &q.nodes[0];
        let mailbox = item.children[0];
        assert_eq!(q.nodes[mailbox].label, lt.lookup("mailbox").unwrap());
        let mail = q.nodes[mailbox].children[0];
        assert_eq!(q.nodes[mail].label, lt.lookup("mail").unwrap());
    }

    #[test]
    fn value_twig() {
        let (q, _) = twig(r#"//inproceedings[year="1998"][title]/author"#);
        assert!(q.has_values());
        let year = q.nodes[0].children[0];
        assert_eq!(q.nodes[year].value.as_deref(), Some("1998"));
        // Depth counts the value leaf: inproceedings/year/#value = 3.
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn unknown_label_is_rejected_in_lookup_mode() {
        let p = parse_path("//nope/x").unwrap();
        let lt = LabelTable::new();
        assert_eq!(
            TwigQuery::from_path(&p, &lt),
            Err(TwigError::UnknownLabel("nope".into()))
        );
    }

    #[test]
    fn non_twig_is_rejected() {
        let p = parse_path("//a//b").unwrap();
        let mut lt = LabelTable::new();
        assert_eq!(
            TwigQuery::from_path_interning(&p, &mut lt),
            Err(TwigError::NotATwig)
        );
    }

    #[test]
    fn edges_enumerate_parent_child_pairs() {
        let (q, lt) = twig("//a[b]/c");
        let a = lt.lookup("a").unwrap();
        let edges: Vec<_> = q.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(a, lt.lookup("b").unwrap())));
        assert!(edges.contains(&(a, lt.lookup("c").unwrap())));
    }
}
