//! Recursive-descent parser for the XPath fragment.
//!
//! Grammar (whitespace permitted around tokens):
//!
//! ```text
//! path      := step+
//! step      := ("/" | "//") name predicate*
//! predicate := "[" relpath ( "=" string )? "]"
//! relpath   := ( ".//" | "" ) name predicate* ( "/" name predicate* )*
//! string    := '"' chars '"' | "'" chars "'"
//! name      := NCName (optionally prefixed `@` for materialized attributes)
//! ```

use std::fmt;

use crate::ast::{Axis, PathExpr, Predicate, Step};

/// A syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset in the query string.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

struct P<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, XPathError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'@') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') || c >= 0x80 {
                // `.` only mid-name; a lone `.` is the self step handled by
                // the caller.
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start || (self.pos == start + 1 && self.s[start] == b'@') {
            return self.err("expected a name");
        }
        if self.s[start] == b'*' {
            return self.err("wildcard NameTests are not in the twig fragment");
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn string_literal(&mut self) -> Result<String, XPathError> {
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a string literal"),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let v = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(v);
            }
            self.pos += 1;
        }
        self.err("unterminated string literal")
    }

    /// Parses predicates attached to the step just read.
    fn predicates(&mut self) -> Result<Vec<Predicate>, XPathError> {
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                return Ok(preds);
            }
            let path = self.rel_path()?;
            self.skip_ws();
            let value = if self.eat(b'=') {
                Some(self.string_literal()?)
            } else {
                None
            };
            self.skip_ws();
            if !self.eat(b']') {
                return self.err("expected `]`");
            }
            preds.push(Predicate { path, value });
        }
    }

    /// Relative path inside a predicate: `a/b`, `.//a/b`.
    fn rel_path(&mut self) -> Result<PathExpr, XPathError> {
        self.skip_ws();
        let mut steps = Vec::new();
        // Optional leading `.//` (or plain `.` which we reject as a bare
        // self step — the twig fragment has no use for it).
        let first_axis = if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat(b'/') && self.eat(b'/') {
                Axis::Descendant
            } else {
                return self.err("expected `.//` in predicate path");
            }
        } else {
            Axis::Child
        };
        let name = self.name()?;
        let predicates = self.predicates()?;
        steps.push(Step {
            axis: first_axis,
            name,
            predicates,
        });
        loop {
            self.skip_ws();
            if self.peek() == Some(b'/') {
                self.pos += 1;
                let axis = if self.eat(b'/') {
                    Axis::Descendant
                } else {
                    Axis::Child
                };
                let name = self.name()?;
                let predicates = self.predicates()?;
                steps.push(Step {
                    axis,
                    name,
                    predicates,
                });
            } else {
                return Ok(PathExpr { steps });
            }
        }
    }

    fn absolute_path(&mut self) -> Result<PathExpr, XPathError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() != Some(b'/') {
                if steps.is_empty() {
                    return self.err("a path must start with `/` or `//`");
                }
                return Ok(PathExpr { steps });
            }
            self.pos += 1;
            let axis = if self.eat(b'/') {
                Axis::Descendant
            } else {
                Axis::Child
            };
            let name = self.name()?;
            let predicates = self.predicates()?;
            steps.push(Step {
                axis,
                name,
                predicates,
            });
        }
    }
}

/// Parses an absolute path expression like
/// `//article[author]/ee` or `//inproceedings[year="1998"][title]/author`.
pub fn parse_path(input: &str) -> Result<PathExpr, XPathError> {
    let mut p = P {
        s: input.as_bytes(),
        pos: 0,
    };
    let path = p.absolute_path()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return p.err("trailing input after path expression");
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_paths() {
        let q = parse_path("//a/b/c").unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        assert_eq!(q.steps[1].axis, Axis::Child);
        assert_eq!(q.steps[2].name, "c");
        assert_eq!(q.to_string(), "//a/b/c");
    }

    #[test]
    fn paper_queries_parse_and_print() {
        // Every representative query listed in Section 6 must round-trip.
        for q in [
            "/article/epilog[acknoledgements]/references/a_id",
            "/article/prolog[keywords]/authors/author/contact[phone]",
            "/article[epilog]/prolog/authors/author",
            "//proceedings[booktitle]/title[sup][i]",
            "//article[number]/author",
            "//inproceedings[url]/title",
            "//category/description[parlist]/parlist/listitem/text",
            "//closed_auction/annotation/description/text",
            "//open_auction[seller]/annotation/description/text",
            "//EMPTY/S/NP[PP]/NP",
            "//S[VP]/NP/NP/PP/NP",
            "//EMPTY/S[VP]/NP",
            "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
            "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
            "//inproceedings[url]/title[sub][i]",
        ] {
            let parsed = parse_path(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_eq!(parsed.to_string(), q, "round-trip failed");
        }
    }

    #[test]
    fn value_predicates() {
        let q = parse_path(r#"//proceedings[publisher="Springer"][title]"#).unwrap();
        assert_eq!(q.steps[0].predicates.len(), 2);
        assert_eq!(q.steps[0].predicates[0].value.as_deref(), Some("Springer"));
        assert!(q.has_value_predicates());
        assert_eq!(
            q.to_string(),
            r#"//proceedings[publisher="Springer"][title]"#
        );
    }

    #[test]
    fn nested_predicates_and_descendant_predicates() {
        let q = parse_path("//open_auction[.//bidder[name][email]]/price").unwrap();
        let pred = &q.steps[0].predicates[0];
        assert_eq!(pred.path.steps[0].axis, Axis::Descendant);
        assert_eq!(pred.path.steps[0].predicates.len(), 2);
        assert!(!q.is_twig());
        assert_eq!(
            q.to_string(),
            "//open_auction[.//bidder[name][email]]/price"
        );
    }

    #[test]
    fn attribute_names() {
        let q = parse_path("//item[@id]/name").unwrap();
        assert_eq!(q.steps[0].predicates[0].path.steps[0].name, "@id");
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse_path(r#" //a [ b = "x" ] / c "#).unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].predicates[0].value.as_deref(), Some("x"));
    }

    #[test]
    fn errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a/b").is_err());
        assert!(parse_path("//a[").is_err());
        assert!(parse_path("//a[b").is_err());
        assert!(parse_path("//a[b=]").is_err());
        assert!(parse_path(r#"//a[b="x]"#).is_err());
        assert!(parse_path("//a]").is_err());
        assert!(parse_path("///a").is_err());
        assert!(parse_path("//*").is_err());
    }
}
