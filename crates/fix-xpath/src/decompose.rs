//! Decomposition of general path expressions into twig blocks (Section 5).
//!
//! A path with interior `//`-axes — e.g.
//! `//open_auction[.//bidder[name][email]]/price` — is not a twig query.
//! The paper decomposes it into twig queries connected by `//`-edges
//! (`//open_auction/price` and `//bidder[name][email]` in the example). The
//! *top* block is the one containing the expression's root; on an index with
//! a non-zero depth limit only the top block provides pruning power (the
//! candidates must contain it rooted at the entry root); on an unlimited
//! index over a document collection, *all* blocks prune (a document must
//! contain every block).

use crate::ast::{Axis, PathExpr, Predicate, Step};

/// Splits `path` into twig blocks. The first element is the top block
/// (containing the original root); all blocks are valid twig expressions
/// with a leading `//` axis (except the top block, which keeps the original
/// leading axis). Value predicates travel with their step.
pub fn decompose(path: &PathExpr) -> Vec<PathExpr> {
    let mut blocks = Vec::new();
    let top = split_spine(&path.steps, path.steps.first().map(|s| s.axis), &mut blocks);
    let mut out = Vec::with_capacity(blocks.len() + 1);
    out.push(top);
    out.append(&mut blocks);
    out
}

/// Processes a spine, cutting at interior `//` steps; returns the leading
/// block and pushes the rest onto `extra`.
fn split_spine(steps: &[Step], lead: Option<Axis>, extra: &mut Vec<PathExpr>) -> PathExpr {
    let mut block = PathExpr { steps: Vec::new() };
    let iter = steps.iter().enumerate().peekable();
    for (i, step) in iter {
        if i > 0 && step.axis == Axis::Descendant {
            // Start a new block at this step; the remainder (including this
            // step) is processed recursively as its own spine.
            let rest = &steps[i..];
            let sub = split_spine(rest, Some(Axis::Descendant), extra);
            extra.push(sub);
            break;
        }
        let mut clean = Step {
            axis: if i == 0 {
                lead.unwrap_or(step.axis)
            } else {
                step.axis
            },
            name: step.name.clone(),
            predicates: Vec::new(),
        };
        for pred in &step.predicates {
            if pred.path.steps.first().map(|s| s.axis) == Some(Axis::Descendant) {
                // `.//x...` predicate: becomes a separate `//x...` block.
                let sub = split_spine(&pred.path.steps, Some(Axis::Descendant), extra);
                extra.push(sub);
            } else {
                // Child predicate: keep it, but recursively extract any
                // interior `//` inside it.
                let sub = split_spine(&pred.path.steps, Some(Axis::Child), extra);
                clean.predicates.push(Predicate {
                    path: sub,
                    value: pred.value.clone(),
                });
            }
        }
        block.steps.push(clean);
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn dec(s: &str) -> Vec<String> {
        decompose(&parse_path(s).unwrap())
            .iter()
            .map(|p| p.to_string())
            .collect()
    }

    #[test]
    fn twig_stays_whole() {
        assert_eq!(dec("//a[b]/c"), vec!["//a[b]/c"]);
    }

    #[test]
    fn paper_example() {
        // Section 5's example.
        let blocks = dec("//open_auction[.//bidder[name][email]]/price");
        assert_eq!(
            blocks,
            vec!["//open_auction/price", "//bidder[name][email]"]
        );
    }

    #[test]
    fn interior_descendant_in_spine() {
        let blocks = dec("//a/b//c/d");
        assert_eq!(blocks, vec!["//a/b", "//c/d"]);
    }

    #[test]
    fn multiple_cuts() {
        let blocks = dec("//a//b[x]//c");
        assert_eq!(blocks, vec!["//a", "//c", "//b[x]"]);
        // All blocks are twigs.
        for b in decompose(&parse_path("//a//b[x]//c").unwrap()) {
            assert!(b.is_twig(), "{b} is not a twig");
        }
    }

    #[test]
    fn rooted_lead_axis_is_preserved() {
        let blocks = dec("/bib/article//author");
        assert_eq!(blocks, vec!["/bib/article", "//author"]);
    }

    #[test]
    fn value_predicates_travel() {
        let blocks = dec(r#"//a[.//b[c="v"]]/d"#);
        assert_eq!(blocks, vec!["//a/d", r#"//b[c="v"]"#]);
    }

    #[test]
    fn all_blocks_are_twigs_property() {
        for q in ["//a//b//c//d", "//a[.//b]//c[d//e]/f", "//x[y/z]//w"] {
            for b in decompose(&parse_path(q).unwrap()) {
                assert!(b.is_twig_with_values(), "{q} produced non-twig {b}");
            }
        }
    }
}
