//! Abstract syntax of the XPath fragment (child/descendant axes, NameTests,
//! branching predicates, value-equality comparisons).

use std::fmt;

/// A step axis. The paper restricts attention to the two axes that a study
/// of the XQuery Use Cases found account for almost all real queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` — descendant(-or-self applied to the following NameTest).
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// A branching predicate: a relative path, optionally compared to a string
/// value (`[author]`, `[.//bidder[name]]`, `[year = "1998"]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The relative path tested for existence.
    pub path: PathExpr,
    /// If set, the last step's text value must equal this string.
    pub value: Option<String>,
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    /// How this step relates to the previous one.
    pub axis: Axis,
    /// The element name to match (`*` wildcards are not part of the paper's
    /// twig model and are rejected by the parser).
    pub name: String,
    /// Branching predicates on this step.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// A predicate-free child step (convenience for tests/builders).
    pub fn child(name: &str) -> Self {
        Step {
            axis: Axis::Child,
            name: name.to_owned(),
            predicates: Vec::new(),
        }
    }

    /// A predicate-free descendant step.
    pub fn descendant(name: &str) -> Self {
        Step {
            axis: Axis::Descendant,
            name: name.to_owned(),
            predicates: Vec::new(),
        }
    }
}

/// A parsed path expression: a non-empty list of steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PathExpr {
    /// The steps, outermost first.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// True if every axis after the first is `/` and no value comparison
    /// appears anywhere — i.e. the expression is a twig query
    /// (Definition 1). The value-extended index relaxes the "no value"
    /// part; see [`PathExpr::is_twig_with_values`].
    pub fn is_twig(&self) -> bool {
        self.is_twig_inner(false)
    }

    /// Like [`PathExpr::is_twig`] but permitting value-equality predicates
    /// (the Section 4.6 extension).
    pub fn is_twig_with_values(&self) -> bool {
        self.is_twig_inner(true)
    }

    fn is_twig_inner(&self, allow_values: bool) -> bool {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 && step.axis != Axis::Child {
                return false;
            }
            for p in &step.predicates {
                if p.value.is_some() && !allow_values {
                    return false;
                }
                // A predicate path is relative: its first step's axis must
                // also be `/` for the whole expression to be a twig.
                if p.path.steps.first().map(|s| s.axis) != Some(Axis::Child) {
                    return false;
                }
                if !p.path.is_twig_pred(allow_values) {
                    return false;
                }
            }
        }
        true
    }

    /// Twig check for a predicate path: *all* axes (including the first)
    /// must be `/`.
    fn is_twig_pred(&self, allow_values: bool) -> bool {
        for step in &self.steps {
            if step.axis != Axis::Child {
                return false;
            }
            for p in &step.predicates {
                if p.value.is_some() && !allow_values {
                    return false;
                }
                if !p.path.is_twig_pred(allow_values) {
                    return false;
                }
            }
        }
        true
    }

    /// The query's depth: the length of the longest root-to-leaf chain of
    /// NameTests, counting predicate branches. Used by the optimizer's
    /// "does the index cover this query" test (Section 5).
    pub fn depth(&self) -> usize {
        // Depth of a step list is 1 + max(depth of the rest of the spine,
        // depth of each predicate path; a value comparison adds one level
        // because it becomes a child value-label node).
        fn rec(steps: &[Step]) -> usize {
            match steps.split_first() {
                None => 0,
                Some((s, rest)) => {
                    let mut m = rec(rest);
                    for p in &s.predicates {
                        m = m.max(rec(&p.path.steps) + usize::from(p.value.is_some()));
                    }
                    1 + m
                }
            }
        }
        rec(&self.steps)
    }

    /// True if any predicate anywhere carries a value comparison.
    pub fn has_value_predicates(&self) -> bool {
        fn any(steps: &[Step]) -> bool {
            steps.iter().any(|s| {
                s.predicates
                    .iter()
                    .any(|p| p.value.is_some() || any(&p.path.steps))
            })
        }
        any(&self.steps)
    }

    /// True if any step has a branching predicate (a "branching path" in the
    /// paper's `bp` vs `sp` query taxonomy).
    pub fn is_branching(&self) -> bool {
        self.steps.iter().any(|s| !s.predicates.is_empty())
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "{}{}", step.axis, step.name)?;
            for p in &step.predicates {
                write!(f, "[")?;
                // Predicate paths print without their leading `/`.
                let mut first = true;
                for ps in &p.path.steps {
                    if first {
                        if ps.axis == Axis::Descendant {
                            write!(f, ".//")?;
                        }
                        first = false;
                    } else {
                        write!(f, "{}", ps.axis)?;
                    }
                    write!(f, "{}", ps.name)?;
                    for pp in &ps.predicates {
                        write!(f, "[{}]", PredDisplay(pp))?;
                    }
                }
                if let Some(v) = &p.value {
                    write!(f, "=\"{v}\"")?;
                }
                write!(f, "]")?;
            }
        }
        Ok(())
    }
}

struct PredDisplay<'a>(&'a Predicate);

impl fmt::Display for PredDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for ps in &self.0.path.steps {
            if first {
                if ps.axis == Axis::Descendant {
                    write!(f, ".//")?;
                }
                first = false;
            } else {
                write!(f, "{}", ps.axis)?;
            }
            write!(f, "{}", ps.name)?;
            for pp in &ps.predicates {
                write!(f, "[{}]", PredDisplay(pp))?;
            }
        }
        if let Some(v) = &self.0.value {
            write!(f, "=\"{v}\"")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(steps: Vec<Step>) -> PathExpr {
        PathExpr { steps }
    }

    #[test]
    fn twig_detection() {
        // //article[author]/ee is a twig.
        let mut art = Step::descendant("article");
        art.predicates.push(Predicate {
            path: path(vec![Step::child("author")]),
            value: None,
        });
        let q = path(vec![art.clone(), Step::child("ee")]);
        assert!(q.is_twig());

        // //article[.//author]/ee is not (descendant inside predicate).
        let mut art2 = Step::descendant("article");
        art2.predicates.push(Predicate {
            path: path(vec![Step::descendant("author")]),
            value: None,
        });
        let q2 = path(vec![art2, Step::child("ee")]);
        assert!(!q2.is_twig());

        // interior // is not a twig.
        let q3 = path(vec![Step::descendant("a"), Step::descendant("b")]);
        assert!(!q3.is_twig());

        // value predicates are not a (pure) twig but are a value twig.
        let mut art3 = Step::descendant("article");
        art3.predicates.push(Predicate {
            path: path(vec![Step::child("name")]),
            value: Some("John Smith".into()),
        });
        let q4 = path(vec![art3, Step::child("title")]);
        assert!(!q4.is_twig());
        assert!(q4.is_twig_with_values());
        assert!(q4.has_value_predicates());
    }

    #[test]
    fn depth_counts_longest_chain() {
        // //a/b/c has depth 3.
        let q = path(vec![
            Step::descendant("a"),
            Step::child("b"),
            Step::child("c"),
        ]);
        assert_eq!(q.depth(), 3);

        // //a[b/c/d]/e : spine depth 2, predicate chain depth 1+3 = 4.
        let mut a = Step::descendant("a");
        a.predicates.push(Predicate {
            path: path(vec![Step::child("b"), Step::child("c"), Step::child("d")]),
            value: None,
        });
        let q2 = path(vec![a, Step::child("e")]);
        assert_eq!(q2.depth(), 4);
    }

    #[test]
    fn branching_classification() {
        let sp = path(vec![Step::descendant("a"), Step::child("b")]);
        assert!(!sp.is_branching());
        let mut a = Step::descendant("a");
        a.predicates.push(Predicate {
            path: path(vec![Step::child("x")]),
            value: None,
        });
        let bp = path(vec![a]);
        assert!(bp.is_branching());
    }
}

/// Fluent builder for programmatic query construction (the API a query
/// compiler would target instead of strings):
///
/// ```
/// use fix_xpath::QueryBuilder;
///
/// let q = QueryBuilder::anywhere("article")
///     .pred(QueryBuilder::rel("author").pred(QueryBuilder::rel("phone")))
///     .pred_eq("year", "1998")
///     .child("title")
///     .build();
/// assert_eq!(q.to_string(), r#"//article[author[phone]][year="1998"]/title"#);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    steps: Vec<Step>,
}

impl QueryBuilder {
    /// Starts an unanchored query: `//name…`.
    pub fn anywhere(name: &str) -> Self {
        Self {
            steps: vec![Step::descendant(name)],
        }
    }

    /// Starts a root-anchored query: `/name…`.
    pub fn rooted(name: &str) -> Self {
        Self {
            steps: vec![Step::child(name)],
        }
    }

    /// Starts a relative path for use inside predicates: `name…`.
    pub fn rel(name: &str) -> Self {
        Self {
            steps: vec![Step::child(name)],
        }
    }

    /// Appends a `/name` step.
    pub fn child(mut self, name: &str) -> Self {
        self.steps.push(Step::child(name));
        self
    }

    /// Appends a `//name` step (the result is no longer a single twig; it
    /// will be decomposed at query time).
    pub fn descendant(mut self, name: &str) -> Self {
        self.steps.push(Step::descendant(name));
        self
    }

    /// Attaches `[<rel>]` to the current step.
    pub fn pred(mut self, rel: QueryBuilder) -> Self {
        self.steps
            .last_mut()
            .expect("builder always has a step")
            .predicates
            .push(Predicate {
                path: rel.build(),
                value: None,
            });
        self
    }

    /// Attaches `[name = "value"]` to the current step.
    pub fn pred_eq(mut self, name: &str, value: &str) -> Self {
        self.steps
            .last_mut()
            .expect("builder always has a step")
            .predicates
            .push(Predicate {
                path: PathExpr {
                    steps: vec![Step::child(name)],
                },
                value: Some(value.to_owned()),
            });
        self
    }

    /// Finishes the expression.
    pub fn build(self) -> PathExpr {
        PathExpr { steps: self.steps }
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_matches_parser() {
        let built = QueryBuilder::anywhere("item")
            .pred(QueryBuilder::rel("name"))
            .child("mailbox")
            .child("mail")
            .pred(QueryBuilder::rel("to"))
            .build();
        let parsed = crate::parser::parse_path("//item[name]/mailbox/mail[to]").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn rooted_and_value_forms() {
        let built = QueryBuilder::rooted("dblp")
            .child("proceedings")
            .pred_eq("publisher", "Springer")
            .build();
        assert_eq!(
            built.to_string(),
            r#"/dblp/proceedings[publisher="Springer"]"#
        );
        assert!(built.is_twig_with_values());
    }

    #[test]
    fn nested_predicates() {
        let built = QueryBuilder::anywhere("a")
            .pred(
                QueryBuilder::rel("b")
                    .pred(QueryBuilder::rel("c"))
                    .child("d"),
            )
            .build();
        assert_eq!(built.to_string(), "//a[b[c]/d]");
    }
}
