//! Path expressions and twig queries (Section 2.1 of the paper).
//!
//! A *path expression* is a list of steps, each with an axis (`/` child or
//! `//` descendant), a NameTest, and zero or more branching predicates;
//! predicates are recursively path expressions, optionally ending in a
//! value-equality comparison (`[year = "1998"]`).
//!
//! A *twig query* (Definition 1) is a path expression whose axes are all
//! `/` except possibly the leading one, with no KindTests and no value
//! comparisons. Twig queries are the unit the FIX index understands; general
//! expressions with interior `//`-axes are decomposed into twig blocks
//! (Section 5), and value comparisons are folded into the structure by the
//! value-hashing extension (Section 4.6).

pub mod ast;
pub mod decompose;
pub mod normalize;
pub mod parser;
pub mod twig;

pub use ast::{Axis, PathExpr, Predicate, QueryBuilder, Step};
pub use decompose::decompose;
pub use normalize::{implies, normalize};
pub use parser::{parse_path, XPathError};
pub use twig::{QueryNode, TwigError, TwigQuery};
