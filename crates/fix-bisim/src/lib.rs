//! Bisimulation graphs for XML trees (Sections 2.2, 4.3–4.4 of the paper).
//!
//! The heart of FIX's indexable-unit generation:
//!
//! * [`BisimGraph`] — a hash-consed minimal bisimulation DAG. Two XML nodes
//!   share a vertex iff their subtrees are structurally equivalent
//!   (Definition 3 — *downward* bisimilarity, coarser than F&B).
//! * [`BisimBuilder`] — the paper's single-pass `CONSTRUCT-ENTRIES`
//!   streaming construction over open/close events.
//! * [`Traveler`] — the depth-limited DFS event generator
//!   (`BISIM-TRAVELER`) used by `GEN-SUBPATTERN` to enumerate depth-`k`
//!   subpatterns of a large document.
//! * [`query_pattern`] — twig query → twig pattern (its bisimulation graph).
//! * [`fb`] — the forward-&-backward bisimulation partition used by the
//!   disk-based F&B index baseline of the experimental section.

pub mod construct;
pub mod fb;
pub mod graph;
pub mod query;
pub mod traveler;

pub use construct::{build_document_graph, BisimBuilder, UnitInfo};
pub use fb::{FbClassId, FbIndex};
pub use graph::{BisimGraph, VertexId};
pub use query::query_pattern;
pub use query::query_pattern_with_values;
pub use traveler::{subpattern, SubpatternForest, Traveler};
