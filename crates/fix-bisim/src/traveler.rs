//! The depth-limited bisimulation-graph "traveler" (`BISIM-TRAVELER`).
//!
//! `GEN-SUBPATTERN` (Algorithm 1) needs the *bisimulation graph of the
//! depth-`L` truncation* of the sub-DAG rooted at a vertex. The truncated
//! sub-DAG itself is generally **not** a bisimulation graph (the paper's
//! example: truncating `bib` at depth 2 repeats `article`), so the traveler
//! re-serializes it as an open/close event stream, which is fed back into
//! [`BisimBuilder`] to produce a proper
//! minimal graph of the truncated pattern.

use fix_xml::{Event, EventSource};

use crate::construct::{BisimBuilder, UnitInfo};
use crate::graph::{BisimGraph, VertexId};

/// DFS event generator over a bisimulation graph, truncated at `limit`
/// levels (the root is level 1).
pub struct Traveler<'g> {
    graph: &'g BisimGraph,
    /// `(vertex, next child index)` stack.
    stack: Vec<(VertexId, usize)>,
    root: Option<VertexId>,
    limit: usize,
}

impl<'g> Traveler<'g> {
    /// Creates a traveler from `root`, emitting at most `limit` levels
    /// (`usize::MAX` for no limit).
    pub fn new(graph: &'g BisimGraph, root: VertexId, limit: usize) -> Self {
        assert!(limit >= 1, "depth limit must be at least 1");
        Self {
            graph,
            stack: Vec::new(),
            root: Some(root),
            limit,
        }
    }
}

impl EventSource for Traveler<'_> {
    fn next_event(&mut self) -> Option<Event> {
        if let Some(root) = self.root.take() {
            self.stack.push((root, 0));
            return Some(Event::Open {
                label: self.graph.label(root),
                ptr: root.0 as u64,
            });
        }
        let depth = self.stack.len();
        let (v, next_child) = self.stack.last_mut()?;
        let children = self.graph.children(*v);
        if depth >= self.limit || *next_child >= children.len() {
            self.stack.pop();
            return Some(Event::Close);
        }
        let c = children[*next_child];
        *next_child += 1;
        self.stack.push((c, 0));
        Some(Event::Open {
            label: self.graph.label(c),
            ptr: c.0 as u64,
        })
    }
}

/// Builds the minimal bisimulation graph of the depth-`limit` subpattern
/// rooted at `v`. Returns a standalone graph plus its unit summary.
///
/// This is the literal `GEN-SUBPATTERN` of Algorithm 1: unfold the DAG to
/// an event stream and re-minimize. The unfolding is exponential in the
/// worst case (a vertex reachable over many paths is replayed per path) —
/// use [`SubpatternForest`] for bulk index construction; this function
/// remains as the executable specification the forest is tested against.
pub fn subpattern(graph: &BisimGraph, v: VertexId, limit: usize) -> (BisimGraph, UnitInfo) {
    let mut sub = BisimGraph::new();
    let info = BisimBuilder::new(&mut sub).run(&mut Traveler::new(graph, v, limit));
    (sub, info)
}

/// Bulk depth-truncation of bisimulation sub-DAGs, memoized.
///
/// Computes the same minimal truncated patterns as [`subpattern`] but
/// directly on the DAG: `truncate(v, d)` is the hash-consed vertex with
/// `v`'s label and children `{truncate(c, d−1)}`, memoized on
/// `(v, min(d, height(v)))` (a truncation at or beyond a vertex's height
/// is the identity). All truncations share one output graph, so two
/// different source vertices with the same depth-`d` pattern yield the
/// *same* output vertex — which also dedups feature computation.
///
/// This replaces the paper's exponential unfold-and-rebuild with an
/// `O(|V| · d · fanout)` construction (a significant share of the paper's
/// reported Treebank index-construction time appears to be exactly this
/// unfolding; see EXPERIMENTS.md).
#[derive(Debug, Default, Clone)]
pub struct SubpatternForest {
    graph: BisimGraph,
    memo: std::collections::HashMap<(VertexId, u32), VertexId>,
}

impl SubpatternForest {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared output graph holding every truncated pattern.
    pub fn graph(&self) -> &BisimGraph {
        &self.graph
    }

    /// Copies a standalone pattern graph (e.g. a [`subpattern`] result)
    /// into the forest, returning the adopted root. Hash-consing makes the
    /// copy coincide with any equal pattern already present.
    pub fn adopt(&mut self, src: &BisimGraph, root: VertexId) -> VertexId {
        // Standalone pattern graphs are hash-consed bottom-up, so children
        // always precede parents and a single id-ordered pass suffices.
        let mut map: Vec<VertexId> = Vec::with_capacity(src.len());
        for v in src.iter() {
            let mut kids: Vec<VertexId> = src.children(v).iter().map(|c| map[c.index()]).collect();
            kids.sort_unstable();
            kids.dedup();
            map.push(self.graph.intern_public(src.label(v), kids));
        }
        map[root.index()]
    }

    /// Truncates the sub-DAG of `v` (in `src`) to `limit` levels and
    /// returns the root of the resulting pattern in [`Self::graph`].
    pub fn truncate(&mut self, src: &BisimGraph, v: VertexId, limit: usize) -> VertexId {
        let eff = limit.min(src.height(v)) as u32;
        if let Some(&o) = self.memo.get(&(v, eff)) {
            return o;
        }
        let children = if eff > 1 {
            let mut kids: Vec<VertexId> = src
                .children(v)
                .to_vec()
                .into_iter()
                .map(|c| self.truncate(src, c, eff as usize - 1))
                .collect();
            kids.sort_unstable();
            kids.dedup();
            kids
        } else {
            Vec::new()
        };
        let o = self.graph.intern_public(src.label(v), children);
        self.memo.insert((v, eff), o);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::build_document_graph;
    use fix_xml::{drain_events, parse_document, LabelTable};

    fn doc_graph(xml: &str) -> (BisimGraph, VertexId, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        (g, info.root, lt)
    }

    #[test]
    fn unlimited_traveler_replays_the_dag_as_tree() {
        let (g, root, _) = doc_graph("<a><b><c/></b><b><c/></b></a>");
        // Bisim graph: a -> b -> c (3 vertices). Traveler from `a` without
        // limit emits a( b( c ) ) — dedup means b appears once.
        let evs = drain_events(Traveler::new(&g, root, usize::MAX));
        let opens = evs
            .iter()
            .filter(|e| matches!(e, fix_xml::Event::Open { .. }))
            .count();
        assert_eq!(opens, 3);
    }

    #[test]
    fn depth_limit_truncates() {
        let (g, root, _) = doc_graph("<a><b><c><d/></c></b></a>");
        let evs = drain_events(Traveler::new(&g, root, 2));
        let opens = evs
            .iter()
            .filter(|e| matches!(e, fix_xml::Event::Open { .. }))
            .count();
        assert_eq!(opens, 2); // a, b only
    }

    #[test]
    fn truncated_subpattern_is_reminimized() {
        // The paper's example: depth-2 truncation from the root repeats
        // structure that must be re-collapsed into a proper bisim graph.
        let (g, root, _) = doc_graph("<bib><article><x/></article><article><y/></article></bib>");
        // Full graph: x, y, article{x}, article{y}, bib = 5 vertices.
        assert_eq!(g.len(), 5);
        // Truncated at depth 2, both articles become leaves with the same
        // signature → they collapse.
        let (sub, info) = subpattern(&g, root, 2);
        assert_eq!(sub.len(), 2);
        assert_eq!(info.depth, 2);
    }

    #[test]
    fn subpattern_depth_one_is_just_the_root() {
        let (g, root, lt) = doc_graph("<a><b/><c/></a>");
        let (sub, info) = subpattern(&g, root, 1);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.label(info.root), lt.lookup("a").unwrap());
    }

    #[test]
    fn subpattern_of_leaf_vertex() {
        let (g, root, lt) = doc_graph("<a><b/></a>");
        let leaf = g.children(root)[0];
        let (sub, info) = subpattern(&g, leaf, 3);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.label(info.root), lt.lookup("b").unwrap());
    }
}

#[cfg(test)]
mod forest_tests {
    use super::*;
    use crate::construct::build_document_graph;
    use fix_xml::{parse_document, LabelTable};

    /// Canonical recursive serialization of a pattern — two minimal
    /// bisimulation DAGs are isomorphic iff their canonical forms agree.
    fn canon(g: &BisimGraph, v: VertexId) -> String {
        let mut kids: Vec<String> = g.children(v).iter().map(|&c| canon(g, c)).collect();
        kids.sort();
        format!("({}{})", g.label(v).0, kids.concat())
    }

    #[test]
    fn forest_matches_the_traveler_specification() {
        // Deterministic pseudo-random documents with recursive labels.
        let mut seed = 77u64;
        let mut next = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..20 {
            let xml = random_tree(&mut next);
            let mut lt = LabelTable::new();
            let d = parse_document(&xml, &mut lt).unwrap();
            let (g, info) = build_document_graph(&d);
            for limit in 1..=4usize {
                for v in g.iter() {
                    let (spec, spec_info) = subpattern(&g, v, limit);
                    let mut forest = SubpatternForest::new();
                    let fast = forest.truncate(&g, v, limit);
                    assert_eq!(
                        canon(&spec, spec_info.root),
                        canon(forest.graph(), fast),
                        "limit {limit}, vertex {v:?}, doc {xml}"
                    );
                }
            }
            let _ = info;
        }
    }

    fn random_tree(next: &mut impl FnMut(u64) -> u64) -> String {
        fn rec(next: &mut impl FnMut(u64) -> u64, depth: usize, out: &mut String) {
            let l = next(4);
            out.push_str(&format!("<t{l}>"));
            if depth < 5 {
                let kids = next(4);
                for _ in 0..kids {
                    rec(next, depth + 1, out);
                }
            }
            out.push_str(&format!("</t{l}>"));
        }
        let mut s = String::new();
        rec(next, 0, &mut s);
        s
    }
}
