//! Forward-&-backward (F&B) bisimulation — the clustering-index baseline.
//!
//! The F&B index [Kaushik et al., SIGMOD 2002; Wang et al., VLDB 2005] is
//! the covering index FIX is compared against in Section 6.3. Two element
//! nodes share an F&B equivalence class iff they have the same label, their
//! children match up classwise (forward), *and* their parents do too
//! (backward). We compute the coarsest such partition by iterated hash
//! refinement to a fixpoint, then materialize the index graph with extents.

use std::collections::HashMap;

use fix_xml::{Document, LabelId, NodeId, NodeKind};

/// A class (vertex) of the F&B index graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FbClassId(pub u32);

/// The F&B bisimulation index of one document.
#[derive(Debug, Clone)]
pub struct FbIndex {
    /// Label of each class.
    labels: Vec<LabelId>,
    /// Child classes of each class (sorted, deduplicated).
    children: Vec<Vec<FbClassId>>,
    /// Extent: document nodes in each class, in document order.
    extents: Vec<Vec<NodeId>>,
    /// Classes with no parent (the root's class).
    roots: Vec<FbClassId>,
    /// Class of each element node (dense over node ids; text nodes map to
    /// `u32::MAX`).
    class_of: Vec<u32>,
}

impl FbIndex {
    /// Builds the F&B index of `doc`.
    pub fn build(doc: &Document) -> Self {
        let n = doc.len();
        // Initial partition: by label; text nodes excluded.
        const NONE: u32 = u32::MAX;
        let mut class: Vec<u32> = vec![NONE; n];
        let mut next = 0u32;
        let mut by_label: HashMap<LabelId, u32> = HashMap::new();
        for (i, slot) in class.iter_mut().enumerate() {
            if let NodeKind::Element(l) = doc.kind(NodeId(i as u32)) {
                let c = *by_label.entry(l).or_insert_with(|| {
                    let c = next;
                    next += 1;
                    c
                });
                *slot = c;
            }
        }
        let mut num_classes = next as usize;

        // Refine until stable. The refinement key of a node is its current
        // class, its parent's class, and the set of its children's classes.
        loop {
            let mut keys: HashMap<(u32, u32, Vec<u32>), u32> = HashMap::new();
            let mut new_class = vec![NONE; n];
            let mut next = 0u32;
            for i in 0..n {
                if class[i] == NONE {
                    continue;
                }
                let id = NodeId(i as u32);
                let parent = doc.parent(id).map(|p| class[p.index()]).unwrap_or(NONE);
                let mut kids: Vec<u32> =
                    doc.element_children(id).map(|c| class[c.index()]).collect();
                kids.sort_unstable();
                kids.dedup();
                let key = (class[i], parent, kids);
                let c = *keys.entry(key).or_insert_with(|| {
                    let c = next;
                    next += 1;
                    c
                });
                new_class[i] = c;
            }
            let new_num = next as usize;
            class = new_class;
            if new_num == num_classes {
                break;
            }
            num_classes = new_num;
        }

        // Materialize graph + extents.
        let mut labels = vec![LabelId(0); num_classes];
        let mut extents: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
        let mut child_sets: Vec<Vec<FbClassId>> = vec![Vec::new(); num_classes];
        let mut roots = Vec::new();
        for i in 0..n {
            if class[i] == NONE {
                continue;
            }
            let id = NodeId(i as u32);
            let c = class[i] as usize;
            if let NodeKind::Element(l) = doc.kind(id) {
                labels[c] = l;
            }
            extents[c].push(id);
            match doc.parent(id) {
                Some(p) => {
                    let pc = class[p.index()] as usize;
                    child_sets[pc].push(FbClassId(c as u32));
                }
                None => roots.push(FbClassId(c as u32)),
            }
        }
        for s in &mut child_sets {
            s.sort_unstable();
            s.dedup();
        }
        roots.sort_unstable();
        roots.dedup();
        FbIndex {
            labels,
            children: child_sets,
            extents,
            roots,
            class_of: class,
        }
    }

    /// Number of index vertices (classes).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for an index over an element-free document (never happens).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of index edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Root classes (for a single document: the root's singleton class).
    pub fn roots(&self) -> &[FbClassId] {
        &self.roots
    }

    /// Label of a class.
    pub fn label(&self, c: FbClassId) -> LabelId {
        self.labels[c.0 as usize]
    }

    /// Child classes of a class.
    pub fn children(&self, c: FbClassId) -> &[FbClassId] {
        &self.children[c.0 as usize]
    }

    /// The document nodes in a class.
    pub fn extent(&self, c: FbClassId) -> &[NodeId] {
        &self.extents[c.0 as usize]
    }

    /// The class of an element node.
    pub fn class_of(&self, n: NodeId) -> Option<FbClassId> {
        let c = self.class_of[n.index()];
        (c != u32::MAX).then_some(FbClassId(c))
    }

    /// Rough on-disk size estimate in bytes (vertices, edges, extents),
    /// for the Table-1-style index size comparison.
    pub fn size_bytes(&self) -> usize {
        self.len() * 8
            + self.edge_count() * 4
            + self.extents.iter().map(|e| e.len() * 4).sum::<usize>()
    }

    /// Iterates all classes.
    pub fn iter(&self) -> impl Iterator<Item = FbClassId> {
        (0..self.labels.len() as u32).map(FbClassId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable};

    fn build(xml: &str) -> (Document, FbIndex, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let idx = FbIndex::build(&d);
        (d, idx, lt)
    }

    #[test]
    fn identical_contexts_share_a_class() {
        let (_, idx, _) = build("<a><b><c/></b><b><c/></b></a>");
        // Classes: a, b, c — the two b's (and two c's) are F&B-bisimilar.
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.roots().len(), 1);
    }

    #[test]
    fn backward_similarity_splits_classes() {
        // Figure 1 vs Figure 2 of the paper: downward bisimulation merges
        // the authors of book and inproceedings, F&B keeps them apart
        // because their parents differ.
        let (_, idx, lt) = build(
            "<bib>\
               <book><author><x/></author></book>\
               <inproceedings><author><x/></author></inproceedings>\
             </bib>",
        );
        let author = lt.lookup("author").unwrap();
        let author_classes = idx.iter().filter(|&c| idx.label(c) == author).count();
        assert_eq!(author_classes, 2, "F&B must split authors by parent");
    }

    #[test]
    fn downward_difference_splits_classes() {
        let (_, idx, lt) = build("<a><b><c/></b><b><d/></b></a>");
        let b = lt.lookup("b").unwrap();
        let b_classes = idx.iter().filter(|&c| idx.label(c) == b).count();
        assert_eq!(b_classes, 2);
    }

    #[test]
    fn extents_cover_all_elements() {
        let (d, idx, _) = build("<a><b><c/></b><b><c/></b><e/></a>");
        let total: usize = idx.iter().map(|c| idx.extent(c).len()).sum();
        let elements = d
            .descendants_or_self(d.root())
            .filter(|&n| matches!(d.kind(n), NodeKind::Element(_)))
            .count();
        assert_eq!(total, elements);
        // class_of is consistent with extents.
        for c in idx.iter() {
            for &n in idx.extent(c) {
                assert_eq!(idx.class_of(n), Some(c));
            }
        }
    }

    #[test]
    fn incompressible_structures_blow_up() {
        // The paper's motivating observation: authors with distinct child
        // combinations are incompressible under F&B.
        let (_, idx, lt) = build(
            "<bib>\
               <article><author><address/><email/></author></article>\
               <article><author><email/></author></article>\
               <book><author><affiliation/><address/></author></book>\
               <www><author><email/><affiliation/></author></www>\
             </bib>",
        );
        let author = lt.lookup("author").unwrap();
        let author_classes = idx.iter().filter(|&c| idx.label(c) == author).count();
        assert_eq!(author_classes, 4, "each author context is a singleton");
    }

    #[test]
    fn graph_edges_follow_document_edges() {
        let (_, idx, lt) = build("<a><b/><c/></a>");
        let root = idx.roots()[0];
        assert_eq!(idx.label(root), lt.lookup("a").unwrap());
        assert_eq!(idx.children(root).len(), 2);
        assert_eq!(idx.edge_count(), 2);
    }
}
