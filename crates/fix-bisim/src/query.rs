//! Twig query → twig pattern (the query's bisimulation graph).
//!
//! Section 2.2: "The tree representation of a twig query can always be
//! translated into a bisimulation graph. We call this bisimulation graph
//! the twig pattern." We reuse the streaming builder by serializing the
//! query tree as an event stream.

use fix_xml::{Event, EventSource, LabelId};
use fix_xpath::TwigQuery;

use crate::construct::{BisimBuilder, UnitInfo};
use crate::graph::BisimGraph;

/// Event stream over a twig query tree. Value constraints are emitted as
/// extra leaf children labeled by `value_label` (the Section 4.6 hashing),
/// mirroring how the document side streams its text nodes.
struct QueryEvents<'q, F> {
    q: &'q TwigQuery,
    /// `(node, next child index, value leaf pending?)`.
    stack: Vec<(usize, usize, bool)>,
    started: bool,
    value_label: F,
    pending_close: bool,
}

impl<F: FnMut(&str) -> LabelId> EventSource for QueryEvents<'_, F> {
    fn next_event(&mut self) -> Option<Event> {
        if self.pending_close {
            self.pending_close = false;
            return Some(Event::Close);
        }
        if !self.started {
            self.started = true;
            let root = self.q.root();
            self.stack
                .push((root, 0, self.q.nodes[root].value.is_some()));
            return Some(Event::Open {
                label: self.q.nodes[root].label,
                ptr: root as u64,
            });
        }
        let (n, next_child, value_pending) = self.stack.last_mut()?;
        let node = &self.q.nodes[*n];
        if *value_pending {
            *value_pending = false;
            let label = (self.value_label)(node.value.as_deref().expect("value set"));
            self.pending_close = true;
            return Some(Event::Open {
                label,
                ptr: u64::MAX,
            });
        }
        if *next_child >= node.children.len() {
            self.stack.pop();
            return Some(Event::Close);
        }
        let c = node.children[*next_child];
        *next_child += 1;
        self.stack.push((c, 0, self.q.nodes[c].value.is_some()));
        Some(Event::Open {
            label: self.q.nodes[c].label,
            ptr: c as u64,
        })
    }
}

/// Builds the twig pattern of a pure structural query.
///
/// # Panics
/// Panics if the query carries value constraints — use
/// [`query_pattern_with_values`] for those.
pub fn query_pattern(q: &TwigQuery) -> (BisimGraph, UnitInfo) {
    assert!(
        !q.has_values(),
        "query has value constraints; use query_pattern_with_values"
    );
    query_pattern_with_values(q, |_| unreachable!("no values present"))
}

/// Builds the twig pattern, mapping value constraints to value labels
/// through `value_label` (the Section 4.6 hash).
pub fn query_pattern_with_values(
    q: &TwigQuery,
    value_label: impl FnMut(&str) -> LabelId,
) -> (BisimGraph, UnitInfo) {
    let mut g = BisimGraph::new();
    let mut src = QueryEvents {
        q,
        stack: Vec::new(),
        started: false,
        value_label,
        pending_close: false,
    };
    let info = BisimBuilder::new(&mut g).run(&mut src);
    (g, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::LabelTable;
    use fix_xpath::{parse_path, TwigQuery};

    fn pattern(s: &str) -> (BisimGraph, UnitInfo, LabelTable) {
        let p = parse_path(s).unwrap();
        let mut lt = LabelTable::new();
        let q = TwigQuery::from_path_interning(&p, &mut lt).unwrap();
        let (g, info) = query_pattern(&q);
        (g, info, lt)
    }

    #[test]
    fn linear_query_pattern() {
        let (g, info, lt) = pattern("//a/b/c");
        assert_eq!(g.len(), 3);
        assert_eq!(g.label(info.root), lt.lookup("a").unwrap());
        assert_eq!(info.depth, 3);
    }

    #[test]
    fn branching_query_pattern() {
        let (g, info, _) = pattern("//author[phone][email]");
        assert_eq!(g.len(), 3);
        assert_eq!(g.children(info.root).len(), 2);
    }

    #[test]
    fn identical_branches_collapse() {
        // //a[b][b]/b — all three b-leaves are bisimilar.
        let (g, info, _) = pattern("//a[b][b]/b");
        assert_eq!(g.len(), 2);
        assert_eq!(g.children(info.root).len(), 1);
    }

    #[test]
    fn value_constraints_become_leaves() {
        let p = parse_path(r#"//inproceedings[year="1998"]/title"#).unwrap();
        let mut lt = LabelTable::new();
        let q = TwigQuery::from_path_interning(&p, &mut lt).unwrap();
        let vlabel = lt.intern("#v42");
        let (g, info) = query_pattern_with_values(&q, |_| vlabel);
        // inproceedings, year, #v42, title.
        assert_eq!(g.len(), 4);
        assert_eq!(info.depth, 3);
    }

    #[test]
    #[should_panic(expected = "value constraints")]
    fn pure_pattern_rejects_values() {
        let p = parse_path(r#"//a[b="x"]"#).unwrap();
        let mut lt = LabelTable::new();
        let q = TwigQuery::from_path_interning(&p, &mut lt).unwrap();
        let _ = query_pattern(&q);
    }
}
