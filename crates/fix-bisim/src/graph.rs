//! The bisimulation DAG data structure.

use std::collections::HashMap;

use fix_xml::LabelId;

/// A vertex of a [`BisimGraph`] (an equivalence class of XML nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index into the graph's vertex arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The *signature* of a vertex: its label plus the set of child vertices
/// (Section 4.3). Two XML nodes are bisimilar iff their signatures —
/// label and set of (already hash-consed) children — coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Signature {
    pub label: LabelId,
    /// Sorted, deduplicated child vertex ids.
    pub children: Vec<VertexId>,
}

#[derive(Debug, Clone)]
struct Vertex {
    label: LabelId,
    /// Sorted, deduplicated children (shared with the signature).
    children: Vec<VertexId>,
    /// Height of the sub-DAG hanging below this vertex (leaf = 1). Because
    /// the graph is hash-consed bottom-up, a child always has a smaller id
    /// than its parents, so heights are computable at insertion time.
    height: u32,
}

/// A minimal (downward) bisimulation DAG.
///
/// Vertices are hash-consed: inserting the same signature twice returns the
/// same vertex, which is what makes the graph minimal by construction. The
/// same graph instance can host the units of an entire document collection
/// (structure shared across documents is stored once).
#[derive(Debug, Default, Clone)]
pub struct BisimGraph {
    vertices: Vec<Vertex>,
    interner: HashMap<Signature, VertexId>,
}

impl BisimGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hash-conses a vertex for `signature`; `children` must already belong
    /// to this graph.
    pub(crate) fn intern(&mut self, sig: Signature) -> VertexId {
        if let Some(&v) = self.interner.get(&sig) {
            return v;
        }
        let height = 1 + sig
            .children
            .iter()
            .map(|c| self.vertices[c.index()].height)
            .max()
            .unwrap_or(0);
        debug_assert!(sig.children.windows(2).all(|w| w[0] < w[1]));
        let id = VertexId(u32::try_from(self.vertices.len()).expect("vertex space exhausted"));
        self.vertices.push(Vertex {
            label: sig.label,
            children: sig.children.clone(),
            height,
        });
        self.interner.insert(sig, id);
        id
    }

    /// Hash-conses a vertex from its label and sorted, deduplicated child
    /// list (the children must belong to this graph). Public entry point
    /// for graph-to-graph constructions like
    /// [`SubpatternForest`](crate::traveler::SubpatternForest).
    pub fn intern_public(&mut self, label: LabelId, children: Vec<VertexId>) -> VertexId {
        self.intern(Signature { label, children })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.vertices.iter().map(|v| v.children.len()).sum()
    }

    /// The vertex's label.
    #[inline]
    pub fn label(&self, v: VertexId) -> LabelId {
        self.vertices[v.index()].label
    }

    /// The vertex's (sorted, deduplicated) children.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.vertices[v.index()].children
    }

    /// Height of the sub-DAG below `v` (a leaf has height 1). This equals
    /// the depth of the deepest XML subtree in `v`'s equivalence class.
    #[inline]
    pub fn height(&self, v: VertexId) -> usize {
        self.vertices[v.index()].height as usize
    }

    /// Iterates all vertex ids.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// True if two distinct vertices share a label. Queries whose pattern
    /// has duplicate labels admit *non-injective* matches, for which no
    /// spectral containment argument is sound — the query processor
    /// weakens pruning to root-label-only for them.
    pub fn has_duplicate_labels(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.vertices.iter().any(|v| !seen.insert(v.label))
    }

    /// Merges every vertex of `src` into this graph and returns the full
    /// id map (`map[v.index()]` is `v`'s vertex here). Because both graphs
    /// are hash-consed bottom-up (a child always has a smaller id than its
    /// parents), one id-ordered pass suffices, and — crucially for the
    /// parallel build — absorbing replays `src`'s intern order exactly:
    /// interleaving per-worker graphs in worker order produces the same
    /// vertex numbering a single sequential construction would.
    pub fn absorb(&mut self, src: &BisimGraph) -> Vec<VertexId> {
        let mut map = Vec::with_capacity(src.vertices.len());
        for v in &src.vertices {
            let mut children: Vec<VertexId> = v.children.iter().map(|c| map[c.index()]).collect();
            children.sort_unstable();
            children.dedup();
            map.push(self.intern(Signature {
                label: v.label,
                children,
            }));
        }
        map
    }

    /// Number of vertices and edges reachable from `root` within `depth`
    /// levels (`usize::MAX` for unlimited). Used to decide whether a
    /// subpattern is too large for eigenvalue extraction (Section 6.1's
    /// `[0, ∞]` fallback).
    pub fn reachable_size(&self, root: VertexId, depth: usize) -> (usize, usize) {
        // A vertex can appear at several depths; count it if reachable at
        // any depth ≤ `depth`. We track the maximal remaining budget at
        // which each vertex was visited to avoid exponential re-walks.
        let mut best: HashMap<VertexId, usize> = HashMap::new();
        let mut expanded: std::collections::HashSet<VertexId> = Default::default();
        let mut stack = vec![(root, depth)];
        let mut edges = 0usize;
        while let Some((v, budget)) = stack.pop() {
            match best.get(&v) {
                Some(&b) if b >= budget => continue,
                _ => {}
            }
            best.insert(v, budget);
            if budget > 1 {
                if expanded.insert(v) {
                    edges += self.children(v).len();
                }
                for &c in self.children(v) {
                    stack.push((c, budget - 1));
                }
            }
        }
        (best.len(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::LabelTable;

    fn lbl(t: &mut LabelTable, s: &str) -> LabelId {
        t.intern(s)
    }

    #[test]
    fn hash_consing_dedups() {
        let mut t = LabelTable::new();
        let a = lbl(&mut t, "a");
        let b = lbl(&mut t, "b");
        let mut g = BisimGraph::new();
        let leaf_b = g.intern(Signature {
            label: b,
            children: vec![],
        });
        let leaf_b2 = g.intern(Signature {
            label: b,
            children: vec![],
        });
        assert_eq!(leaf_b, leaf_b2);
        let pa = g.intern(Signature {
            label: a,
            children: vec![leaf_b],
        });
        assert_eq!(g.len(), 2);
        assert_eq!(g.children(pa), &[leaf_b]);
        assert_eq!(g.height(pa), 2);
        assert_eq!(g.height(leaf_b), 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn graph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BisimGraph>();
        assert_send_sync::<VertexId>();
    }

    #[test]
    fn absorb_merges_and_replays_intern_order() {
        let mut t = LabelTable::new();
        let (a, b, c) = (lbl(&mut t, "a"), lbl(&mut t, "b"), lbl(&mut t, "c"));

        // Worker-local graph 1: c-leaf, then b(c).
        let mut g1 = BisimGraph::new();
        let c1 = g1.intern_public(c, vec![]);
        let b1 = g1.intern_public(b, vec![c1]);

        // Worker-local graph 2: c-leaf again (duplicate), then a(c).
        let mut g2 = BisimGraph::new();
        let c2 = g2.intern_public(c, vec![]);
        let a2 = g2.intern_public(a, vec![c2]);

        // Sequential reference: the same intern calls in worker order.
        let mut seq = BisimGraph::new();
        let sc = seq.intern_public(c, vec![]);
        let sb = seq.intern_public(b, vec![sc]);
        let sc2 = seq.intern_public(c, vec![]);
        let sa = seq.intern_public(a, vec![sc2]);

        let mut merged = BisimGraph::new();
        let m1 = merged.absorb(&g1);
        let m2 = merged.absorb(&g2);
        assert_eq!(merged.len(), 3, "shared c-leaf stored once");
        assert_eq!(m1[b1.index()], sb);
        assert_eq!(m1[c1.index()], sc);
        assert_eq!(m2[a2.index()], sa);
        assert_eq!(m2[c2.index()], sc2);
        assert_eq!(merged.len(), seq.len());
        for v in merged.iter() {
            assert_eq!(merged.label(v), seq.label(v));
            assert_eq!(merged.children(v), seq.children(v));
            assert_eq!(merged.height(v), seq.height(v));
        }
    }

    #[test]
    fn reachable_size_respects_depth() {
        let mut t = LabelTable::new();
        let (a, b, c) = (lbl(&mut t, "a"), lbl(&mut t, "b"), lbl(&mut t, "c"));
        let mut g = BisimGraph::new();
        let vc = g.intern(Signature {
            label: c,
            children: vec![],
        });
        let vb = g.intern(Signature {
            label: b,
            children: vec![vc],
        });
        let va = g.intern(Signature {
            label: a,
            children: vec![vb],
        });
        assert_eq!(g.reachable_size(va, usize::MAX), (3, 2));
        assert_eq!(g.reachable_size(va, 2), (2, 1));
        assert_eq!(g.reachable_size(va, 1), (1, 0));
    }
}

impl BisimGraph {
    /// Renders the sub-DAG reachable from `root` in Graphviz dot format
    /// (the paper's Figures 1–2 are exactly such drawings). `names`
    /// resolves labels to strings.
    pub fn to_dot(&self, root: VertexId, names: &fix_xml::LabelTable) -> String {
        let mut out = String::from("digraph bisim {\n  rankdir=LR;\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            out.push_str(&format!(
                "  n{} [label=\"{}\"];\n",
                v.0,
                names.resolve(self.label(v))
            ));
            for &c in self.children(v) {
                out.push_str(&format!("  n{} -> n{};\n", v.0, c.0));
                stack.push(c);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use crate::construct::build_document_graph;
    use fix_xml::{parse_document, LabelTable};

    #[test]
    fn dot_output_covers_the_reachable_graph() {
        let mut lt = LabelTable::new();
        let d = parse_document(
            "<bib><article><author/></article><book><author/></book></bib>",
            &mut lt,
        )
        .unwrap();
        let (g, info) = build_document_graph(&d);
        let dot = g.to_dot(info.root, &lt);
        assert!(dot.starts_with("digraph bisim {"));
        for name in ["bib", "article", "book", "author"] {
            assert!(dot.contains(name), "missing {name} in {dot}");
        }
        // One shared author vertex (downward bisim merges them) → exactly
        // one label line for author.
        assert_eq!(dot.matches("label=\"author\"").count(), 1);
    }
}
