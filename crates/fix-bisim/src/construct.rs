//! The single-pass streaming bisimulation-graph construction —
//! `CONSTRUCT-ENTRIES` of Algorithm 1.
//!
//! The builder consumes open/close [`Event`]s. It keeps a `PathStack` of
//! in-progress signatures; when an element closes, its signature (label +
//! set of child vertices, all of which closed earlier) is hash-consed into
//! the shared [`BisimGraph`], and the resulting vertex is appended to the
//! parent's child set. The CPU cost is `O(n + m)` — one hash lookup per
//! close event.
//!
//! Consumers hook per-element behaviour by iterating
//! the returned [`UnitInfo::closed`] list: for a depth-limited index
//! (Section 4.4) *every element* yields an index entry, so the builder
//! records `(vertex, ptr, subtree depth)` for each close event it sees.

use fix_xml::{Event, EventSource, StoragePtr};

use crate::graph::{BisimGraph, Signature, VertexId};

/// What the builder learned about one indexable unit (one event stream).
#[derive(Debug, Clone)]
pub struct UnitInfo {
    /// The bisimulation vertex of the unit's root (`G.root`).
    pub root: VertexId,
    /// The root's pointer into primary storage.
    pub root_ptr: StoragePtr,
    /// Maximum element depth of the unit (`G.dep`).
    pub depth: usize,
    /// Every closed element as `(vertex, ptr)`, in close-event order.
    /// For depth limit 0 only the root entry is used; for a positive depth
    /// limit each element becomes an index entry (Theorem 4: the number of
    /// enumerated subpattern instances equals the number of elements).
    pub closed: Vec<(VertexId, StoragePtr)>,
}

/// Streaming builder over a shared [`BisimGraph`].
pub struct BisimBuilder<'g> {
    graph: &'g mut BisimGraph,
    /// `(signature-in-progress, ptr)` — the paper's `PathStack`.
    stack: Vec<(Signature, StoragePtr)>,
    closed: Vec<(VertexId, StoragePtr)>,
    max_depth: usize,
    root: Option<(VertexId, StoragePtr)>,
    /// Whether to record every closed element (needed only when the caller
    /// enumerates subpatterns; collections of small documents skip it).
    record_all: bool,
}

impl<'g> BisimBuilder<'g> {
    /// Creates a builder writing into `graph`.
    pub fn new(graph: &'g mut BisimGraph) -> Self {
        Self {
            graph,
            stack: Vec::new(),
            closed: Vec::new(),
            max_depth: 0,
            root: None,
            record_all: false,
        }
    }

    /// Records `(vertex, ptr)` for every element, not just the unit root.
    pub fn record_all_elements(mut self) -> Self {
        self.record_all = true;
        self
    }

    /// Consumes `events` until exhaustion and returns the unit summary.
    ///
    /// # Panics
    /// Panics on unbalanced streams (they cannot come from a well-formed
    /// document or from the traveler).
    pub fn run(mut self, events: &mut dyn EventSource) -> UnitInfo {
        while let Some(ev) = events.next_event() {
            match ev {
                Event::Open { label, ptr } => {
                    self.stack.push((
                        Signature {
                            label,
                            children: Vec::new(),
                        },
                        ptr,
                    ));
                    self.max_depth = self.max_depth.max(self.stack.len());
                }
                Event::Close => {
                    let (sig, ptr) = self.stack.pop().expect("close without open");
                    let v = self.graph.intern(sig);
                    if self.record_all {
                        self.closed.push((v, ptr));
                    }
                    if let Some((parent_sig, _)) = self.stack.last_mut() {
                        // Child sets are kept sorted + deduplicated so the
                        // signature is canonical.
                        if let Err(pos) = parent_sig.children.binary_search(&v) {
                            parent_sig.children.insert(pos, v);
                        }
                    } else {
                        self.root = Some((v, ptr));
                    }
                }
            }
        }
        assert!(self.stack.is_empty(), "unbalanced event stream");
        let (root, root_ptr) = self.root.expect("empty event stream");
        UnitInfo {
            root,
            root_ptr,
            depth: self.max_depth,
            closed: self.closed,
        }
    }
}

/// Convenience: builds the bisimulation graph of a whole document.
pub fn build_document_graph(doc: &fix_xml::Document) -> (BisimGraph, UnitInfo) {
    let mut g = BisimGraph::new();
    let info = BisimBuilder::new(&mut g).run(&mut fix_xml::TreeEventSource::whole(doc));
    (g, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xml::{parse_document, LabelTable, TreeEventSource};

    fn graph_of(xml: &str) -> (BisimGraph, UnitInfo, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        (g, info, lt)
    }

    #[test]
    fn identical_subtrees_collapse() {
        // Two identical <article><title/></article> children collapse.
        let (g, info, lt) =
            graph_of("<bib><article><title/></article><article><title/></article></bib>");
        // Vertices: title, article, bib = 3.
        assert_eq!(g.len(), 3);
        assert_eq!(g.label(info.root), lt.lookup("bib").unwrap());
        assert_eq!(g.children(info.root).len(), 1);
        assert_eq!(info.depth, 3);
    }

    #[test]
    fn different_subtrees_stay_apart() {
        // paper Figure 1/2: authors under book & inproceedings with the
        // same children collapse in the (downward) bisimulation graph.
        let (g, _, _) = graph_of(
            "<bib>\
               <book><author><affiliation/><address/></author><title/></book>\
               <inproceedings><author><affiliation/><address/></author><title/></inproceedings>\
             </bib>",
        );
        // Vertices: affiliation, address, author, title, book,
        // inproceedings, bib = 7 (the two authors share one vertex).
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn sibling_order_is_irrelevant() {
        let (g1, i1, _) = graph_of("<a><b/><c/></a>");
        let (g2, i2, _) = graph_of("<a><c/><b/></a>");
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.children(i1.root).len(), g2.children(i2.root).len());
    }

    #[test]
    fn duplicate_children_dedup_in_signature() {
        let (g, info, _) = graph_of("<a><b/><b/><b/></a>");
        assert_eq!(g.len(), 2);
        assert_eq!(g.children(info.root).len(), 1);
    }

    #[test]
    fn record_all_elements_counts_every_element() {
        let mut lt = LabelTable::new();
        let d = parse_document("<a><b><c/></b><b><c/></b></a>", &mut lt).unwrap();
        let mut g = BisimGraph::new();
        let info = BisimBuilder::new(&mut g)
            .record_all_elements()
            .run(&mut TreeEventSource::whole(&d));
        // 5 elements → 5 closed entries (Theorem 4), but only 3 vertices.
        assert_eq!(info.closed.len(), 5);
        assert_eq!(g.len(), 3);
        // Pointers are distinct per element.
        let ptrs: std::collections::HashSet<_> = info.closed.iter().map(|&(_, p)| p).collect();
        assert_eq!(ptrs.len(), 5);
    }

    #[test]
    fn collection_shares_one_graph() {
        let mut lt = LabelTable::new();
        let d1 = parse_document("<a><b/></a>", &mut lt).unwrap();
        let d2 = parse_document("<a><b/></a>", &mut lt).unwrap();
        let mut g = BisimGraph::new();
        let i1 = BisimBuilder::new(&mut g).run(&mut TreeEventSource::whole(&d1));
        let i2 = BisimBuilder::new(&mut g).run(&mut TreeEventSource::whole(&d2));
        // Identical documents map to the same root vertex.
        assert_eq!(i1.root, i2.root);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn recursive_structure() {
        let (g, info, _) = graph_of("<s><s><s/></s></s>");
        // Each nesting level has a different subtree, hence its own vertex.
        assert_eq!(g.len(), 3);
        assert_eq!(info.depth, 3);
        assert_eq!(g.height(info.root), 3);
    }
}
