//! Sharded counters and gauges — the scalar metric kinds.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of shards per counter. A power of two so the shard pick is a
/// mask; 16 is enough that a realistic session fan-out rarely puts two
/// hot threads on one line.
const SHARDS: usize = 16;

/// One cache line per shard so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Monotonically increasing 64-bit counter, sharded across cache lines.
///
/// `add` is a single relaxed `fetch_add` on the calling thread's shard;
/// `value` sums the shards. The sum is only *eventually* exact under
/// concurrent writers (like any relaxed counter), but once writers quiesce
/// — a joined thread fan-out, for instance — it is deterministic: the
/// total equals exactly the number of recorded increments at any thread
/// count.
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    /// Adds `n` to the counter (lock-free, relaxed).
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed level: last-set-wins `set`, plus relaxed `add`.
pub struct Gauge {
    value: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The calling thread's shard slot: threads draw a ticket from a global
/// sequence on first use, so any number of concurrent writers spread
/// round-robin over the shards with no per-call `ThreadId` hashing.
fn shard_index() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TICKET: usize = NEXT.fetch_add(1, Ordering::Relaxed) as usize;
    }
    TICKET.with(|t| t & (SHARDS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.set(-1);
        assert_eq!(g.value(), -1);
    }

    #[test]
    fn concurrent_adds_are_exact_after_join() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }
}
