//! Snapshot-delta rates — the arithmetic behind `fixdb top` and
//! `fixdb stats --interval`.
//!
//! A [`MetricsSnapshot`] is cumulative; a dashboard wants *rates*.
//! [`SnapshotDelta`] wraps two snapshots taken a known wall-clock interval
//! apart and answers the derived questions: counter deltas and per-second
//! rates, interval-local histogram distributions (bucket-wise
//! subtraction, so quantiles describe only the window), and current gauge
//! levels. Keeping this in `fix-obs` means every consumer computes the
//! same numbers from the same snapshots.

use std::time::Duration;

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricsSnapshot;

/// Two snapshots a known interval apart, with rate arithmetic.
pub struct SnapshotDelta<'a> {
    prev: &'a MetricsSnapshot,
    cur: &'a MetricsSnapshot,
    secs: f64,
}

impl<'a> SnapshotDelta<'a> {
    /// Pairs `prev` (earlier) and `cur` (later) snapshots taken `wall`
    /// apart. A zero interval is clamped to 1ns so rates stay finite.
    pub fn new(prev: &'a MetricsSnapshot, cur: &'a MetricsSnapshot, wall: Duration) -> Self {
        Self {
            prev,
            cur,
            secs: wall.as_secs_f64().max(1e-9),
        }
    }

    /// The interval length in (fractional) seconds.
    pub fn secs(&self) -> f64 {
        self.secs
    }

    /// How much counter `name` advanced over the interval (0 when absent
    /// on either side — a metric that appeared mid-interval counts from 0).
    pub fn counter_delta(&self, name: &str) -> u64 {
        let cur = self.cur.counter(name).unwrap_or(0);
        let prev = self.prev.counter(name).unwrap_or(0);
        cur.saturating_sub(prev)
    }

    /// Counter `name`'s per-second rate over the interval.
    pub fn counter_rate(&self, name: &str) -> f64 {
        self.counter_delta(name) as f64 / self.secs
    }

    /// Gauge `name`'s current (later-snapshot) level.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.cur.gauge(name)
    }

    /// How much gauge `name` moved over the interval (later minus earlier;
    /// absent sides read as 0). For cumulative levels reported as gauges —
    /// the pool's hit/miss counts — this is the window-local activity.
    pub fn gauge_delta(&self, name: &str) -> i64 {
        self.cur.gauge(name).unwrap_or(0) - self.prev.gauge(name).unwrap_or(0)
    }

    /// The interval-local histogram of `name`: later buckets minus
    /// earlier, so `quantile` answers "during this window" rather than
    /// "since the process started". `None` if absent from the later
    /// snapshot or if nothing was recorded during the window.
    pub fn histogram_delta(&self, name: &str) -> Option<HistogramSnapshot> {
        let cur = self.cur.histogram(name)?;
        let mut delta = cur.clone();
        if let Some(prev) = self.prev.histogram(name) {
            for (d, p) in delta.buckets.iter_mut().zip(prev.buckets.iter()) {
                *d = d.saturating_sub(*p);
            }
            delta.count = delta.count.saturating_sub(prev.count);
            delta.sum = delta.sum.saturating_sub(prev.sum);
        }
        if delta.count == 0 {
            None
        } else {
            Some(delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn counter_rates_and_deltas() {
        let reg = MetricsRegistry::new();
        reg.counter("fix_c_total").add(10);
        let prev = reg.snapshot();
        reg.counter("fix_c_total").add(40);
        reg.counter("fix_new_total").add(8);
        let cur = reg.snapshot();
        let d = SnapshotDelta::new(&prev, &cur, Duration::from_secs(2));
        assert_eq!(d.counter_delta("fix_c_total"), 40);
        assert!((d.counter_rate("fix_c_total") - 20.0).abs() < 1e-9);
        // Appeared mid-interval: counts from zero.
        assert_eq!(d.counter_delta("fix_new_total"), 8);
        assert_eq!(d.counter_delta("fix_absent_total"), 0);
    }

    #[test]
    fn histogram_delta_is_window_local() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("fix_h_ns");
        h.record(1); // before the window: tiny sample
        let prev = reg.snapshot();
        h.record(1 << 20); // inside the window: big sample
        let cur = reg.snapshot();
        let d = SnapshotDelta::new(&prev, &cur, Duration::from_secs(1));
        let win = d.histogram_delta("fix_h_ns").unwrap();
        assert_eq!(win.count, 1);
        // The window's p50 reflects only the big sample, not the earlier
        // tiny one the cumulative histogram would fold in.
        assert_eq!(win.quantile(0.5), Some(1 << 21));
        // An idle window yields None.
        let cur2 = reg.snapshot();
        let d2 = SnapshotDelta::new(&cur, &cur2, Duration::from_secs(1));
        assert!(d2.histogram_delta("fix_h_ns").is_none());
    }

    #[test]
    fn gauges_read_the_later_side() {
        let reg = MetricsRegistry::new();
        reg.gauge("fix_g").set(5);
        let prev = reg.snapshot();
        reg.gauge("fix_g").set(9);
        let cur = reg.snapshot();
        let d = SnapshotDelta::new(&prev, &cur, Duration::ZERO);
        assert_eq!(d.gauge("fix_g"), Some(9));
        assert_eq!(d.gauge_delta("fix_g"), 4);
        assert_eq!(d.gauge_delta("fix_absent"), 0);
        assert!(d.secs() > 0.0, "zero interval clamps, rates stay finite");
    }
}
