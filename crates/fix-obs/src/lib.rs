//! Observability for the FIX index — metrics and per-query traces.
//!
//! The paper evaluates FIX almost entirely through observability-style
//! numbers: the Section 6.2 `sel`/`pp`/`fpr` effectiveness metrics and the
//! Figure 5–7 timing breakdowns. This crate is the production-serving
//! counterpart of those experiment harness counters — a dependency-free
//! (std-only, hand-rolled atomics) layer the rest of the workspace feeds:
//!
//! * [`MetricsRegistry`] — a named registry of sharded atomic
//!   [`Counter`]s, [`Gauge`]s, and log₂-bucketed latency [`Histogram`]s.
//!   Recording is lock-free (relaxed atomics on pre-resolved handles);
//!   reading takes a point-in-time [`MetricsSnapshot`] that renders as
//!   Prometheus text or JSON and merges associatively with other
//!   snapshots.
//! * [`QueryTrace`] — the per-query stage pipeline (parse → plan-cache
//!   probe → compile → eigenvalue computation → B-tree scan → candidate
//!   refinement) with wall times, item counts, cache hit/miss, and
//!   deterministic per-worker refinement timings. `EXPLAIN ANALYZE`
//!   attaches one of these to a real execution.
//! * [`Reportable`] — the common surface for the workspace's snapshot
//!   structs (`BTreeStats`, `TwigStackStats`, `PathStackStats`,
//!   `CacheStats`, `BuildStats`, …): `report(&self, registry)` lands their
//!   fields in the registry instead of leaving them as dead fields.
//!
//! # Naming conventions
//!
//! Metric names follow `fix_<subsystem>_<quantity>[_<unit>]`:
//! monotonically increasing totals end in `_total`, latency histograms in
//! `_ns` (nanosecond buckets), and point-in-time levels carry no suffix
//! (they are gauges). See DESIGN.md §11 for the full inventory.
//!
//! # Overhead budget
//!
//! Everything on a query's hot path is either free when unused (traces are
//! built only for `*_traced` calls) or a handful of relaxed atomic
//! operations per *query* — never per candidate. Counters are sharded to
//! keep concurrent sessions from bouncing one cache line.

pub mod event;
pub mod histogram;
pub mod json;
pub mod metric;
pub mod rates;
pub mod registry;
pub mod trace;

pub use event::{Category, Event, EventRecorder, FieldValue, Severity, Span};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metric::{Counter, Gauge};
pub use rates::SnapshotDelta;
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use trace::{QueryTrace, Stage, StageRecord};

/// Canonical metric names shared across crates, so producers (fix-core
/// persistence) and consumers (`fixdb stats`, dashboards) can't drift
/// apart on spelling.
pub mod names {
    /// Histogram: wall time of one database save, nanoseconds.
    pub const PERSIST_SAVE_NS: &str = "fix_persist_save_ns";
    /// Histogram: wall time of one database load, nanoseconds.
    pub const PERSIST_LOAD_NS: &str = "fix_persist_load_ns";
    /// Histogram: wall time of one `verify` pass, nanoseconds.
    pub const PERSIST_VERIFY_NS: &str = "fix_persist_verify_ns";
    /// Counter: bytes written by completed saves.
    pub const PERSIST_BYTES_WRITTEN: &str = "fix_persist_bytes_written_total";
    /// Counter: bytes read by completed loads.
    pub const PERSIST_BYTES_READ: &str = "fix_persist_bytes_read_total";
    /// Counter: corrupt sections detected by loads and verifies.
    pub const PERSIST_CORRUPTION_DETECTED: &str = "fix_persist_corruption_detected_total";
    /// Gauge: entries currently in the delta run (0 after compaction).
    pub const DELTA_ENTRIES: &str = "fix_delta_entries";
    /// Gauge: resident bytes of the delta run (plus clustered copies).
    pub const DELTA_BYTES: &str = "fix_delta_bytes";
    /// Counter: delta-side scans performed by merged index scans.
    pub const DELTA_SCANS: &str = "fix_delta_scans_total";
    /// Counter: entries yielded by delta-side scans.
    pub const DELTA_SCAN_ENTRIES: &str = "fix_delta_scan_entries_total";
    /// Counter: wall time spent scanning the delta, nanoseconds.
    pub const DELTA_SCAN_NS: &str = "fix_delta_scan_ns_total";
    /// Counter: candidates contributed by the delta run.
    pub const DELTA_CANDIDATES_TOTAL: &str = "fix_delta_candidates_total";
    /// Counter: compactions folded into the live index.
    pub const DELTA_COMPACTIONS: &str = "fix_delta_compactions_total";
    /// Histogram: wall time of one compaction, nanoseconds.
    pub const DELTA_COMPACT_NS: &str = "fix_delta_compact_ns";
    /// Counter: WAL records appended (one per committed write batch).
    pub const WAL_APPENDS: &str = "fix_wal_appends_total";
    /// Counter: WAL record payload bytes appended.
    pub const WAL_APPENDED_BYTES: &str = "fix_wal_appended_bytes_total";
    /// Counter: fsyncs issued by the WAL (group commit batches these).
    pub const WAL_FSYNCS: &str = "fix_wal_fsyncs_total";
    /// Histogram: wall time of one WAL record append (frame build +
    /// write), nanoseconds.
    pub const WAL_APPEND_NS: &str = "fix_wal_append_ns";
    /// Histogram: wall time of one WAL fsync, nanoseconds.
    pub const WAL_FSYNC_NS: &str = "fix_wal_fsync_ns";
    /// Counter: group-commit flush cycles (each covers ≥1 append).
    pub const WAL_GROUP_COMMITS: &str = "fix_wal_group_commits_total";
    /// Gauge: appended-but-unsynced records a group flush found queued.
    pub const WAL_GROUP_QUEUE_DEPTH: &str = "fix_wal_group_queue_depth";
    /// Counter: WAL segments sealed (each freezes a delta run).
    pub const WAL_SEALS: &str = "fix_wal_sealed_segments_total";
    /// Counter: WAL records replayed by crash recovery at open.
    pub const WAL_REPLAYED: &str = "fix_wal_replayed_records_total";
    /// Gauge: live WAL segment files (sealed-but-live plus the tail).
    pub const WAL_SEGMENTS: &str = "fix_wal_segments";
    /// Gauge: records in the unsealed WAL tail segment.
    pub const WAL_TAIL_RECORDS: &str = "fix_wal_tail_records";
    /// Gauge: bytes in the unsealed WAL tail segment.
    pub const WAL_TAIL_BYTES: &str = "fix_wal_tail_bytes";
    /// Gauge: frozen delta runs across all tier levels.
    pub const LEVEL_RUNS: &str = "fix_level_runs";
    /// Gauge: depth of the delta tier stack (levels).
    pub const LEVEL_DEPTH: &str = "fix_level_depth";
    /// Gauge: entries across all frozen delta runs.
    pub const LEVEL_ENTRIES: &str = "fix_level_entries";
    /// Gauge: resident bytes across all frozen delta runs.
    pub const LEVEL_BYTES: &str = "fix_level_bytes";
    /// Counter: active-run freezes (delta seals) since open.
    pub const LEVEL_SEALS: &str = "fix_level_seals_total";
    /// Counter: tier-cascade run merges since open.
    pub const LEVEL_MERGES: &str = "fix_level_run_merges_total";
    /// Gauge: pages the buffer pool has quarantined after a failed
    /// physical read (cleared by repair).
    pub const POOL_QUARANTINED: &str = "fix_pool_quarantined";
    /// Counter: queries cancelled at their deadline.
    pub const QUERY_TIMEOUTS: &str = "fix_query_timeouts_total";

    /// One-line HELP text for a metric name — the canonical names get
    /// their doc sentence; anything else gets a generic line so Prometheus
    /// exposition always carries a `# HELP` per family.
    pub fn help(name: &str) -> &'static str {
        match name {
            PERSIST_SAVE_NS => "Wall time of one database save, nanoseconds.",
            PERSIST_LOAD_NS => "Wall time of one database load, nanoseconds.",
            PERSIST_VERIFY_NS => "Wall time of one verify pass, nanoseconds.",
            PERSIST_BYTES_WRITTEN => "Bytes written by completed saves.",
            PERSIST_BYTES_READ => "Bytes read by completed loads.",
            PERSIST_CORRUPTION_DETECTED => "Corrupt sections detected by loads and verifies.",
            DELTA_ENTRIES => "Entries currently in the delta run.",
            DELTA_BYTES => "Resident bytes of the delta run.",
            DELTA_SCANS => "Delta-side scans performed by merged index scans.",
            DELTA_SCAN_ENTRIES => "Entries yielded by delta-side scans.",
            DELTA_SCAN_NS => "Wall time spent scanning the delta, nanoseconds.",
            DELTA_CANDIDATES_TOTAL => "Candidates contributed by the delta run.",
            DELTA_COMPACTIONS => "Compactions folded into the live index.",
            DELTA_COMPACT_NS => "Wall time of one compaction, nanoseconds.",
            WAL_APPENDS => "WAL records appended (one per committed write batch).",
            WAL_APPENDED_BYTES => "WAL record payload bytes appended.",
            WAL_FSYNCS => "Fsyncs issued by the WAL.",
            WAL_APPEND_NS => "Wall time of one WAL record append, nanoseconds.",
            WAL_FSYNC_NS => "Wall time of one WAL fsync, nanoseconds.",
            WAL_GROUP_COMMITS => "Group-commit flush cycles.",
            WAL_GROUP_QUEUE_DEPTH => {
                "Appended-but-unsynced records found queued at the last group flush."
            }
            WAL_SEALS => "WAL segments sealed (each freezes a delta run).",
            WAL_REPLAYED => "WAL records replayed by crash recovery at open.",
            WAL_SEGMENTS => "Live WAL segment files.",
            WAL_TAIL_RECORDS => "Records in the unsealed WAL tail segment.",
            WAL_TAIL_BYTES => "Bytes in the unsealed WAL tail segment.",
            LEVEL_RUNS => "Frozen delta runs across all tier levels.",
            LEVEL_DEPTH => "Depth of the delta tier stack.",
            LEVEL_ENTRIES => "Entries across all frozen delta runs.",
            LEVEL_BYTES => "Resident bytes across all frozen delta runs.",
            LEVEL_SEALS => "Active-run freezes (delta seals) since open.",
            LEVEL_MERGES => "Tier-cascade run merges since open.",
            POOL_QUARANTINED => "Pages quarantined by the buffer pool after a failed read.",
            QUERY_TIMEOUTS => "Queries cancelled at their deadline.",
            _ => "FIX engine metric (see DESIGN.md \u{00a7}11).",
        }
    }
}

/// The common reporting surface for the workspace's statistics structs.
///
/// Implementations either *set* gauges (point-in-time snapshot structs
/// such as `BTreeStats` or `BuildStats` — calling `report` twice is
/// idempotent) or *add* to counters (per-evaluation work-counter structs
/// such as `TwigStackStats` — each call accumulates one evaluation's
/// work). Each impl documents which.
pub trait Reportable {
    /// Lands this struct's fields in `registry` under the crate-wide
    /// naming conventions.
    fn report(&self, registry: &MetricsRegistry);
}
