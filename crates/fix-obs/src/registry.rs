//! [`MetricsRegistry`] — named counters, gauges, and histograms with
//! mergeable snapshots and Prometheus/JSON exposition.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot};
use crate::json::JsonWriter;
use crate::metric::{Counter, Gauge};

/// One live metric, by kind.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back an
/// `Arc` handle; hot paths resolve their handles once (at session
/// creation, say) and record through them lock-free. The registry itself
/// is only locked for name resolution and snapshots. There is no global
/// instance — owners (`FixDatabase`, a `QuerySession`) hold and share
/// their registry explicitly.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(name) {
            return m.clone();
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, created empty on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A point-in-time snapshot of every registered metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().expect("registry poisoned");
        MetricsSnapshot {
            metrics: map
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.value()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }

    /// Renders the current state in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Renders the current state as one JSON object keyed by metric name.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Cumulative total.
    Counter(u64),
    /// Point-in-time level.
    Gauge(i64),
    /// Bucketed distribution (boxed: a snapshot is 64 buckets wide, far
    /// larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of a registry, detached from the live atomics.
///
/// Snapshots merge associatively: counters and histogram buckets add,
/// gauges keep the left (first) operand's level when both sides carry the
/// same gauge. Merging per-shard or per-process snapshots in any grouping
/// therefore yields one deterministic total.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Name → value, sorted by name (`BTreeMap` keeps rendering stable).
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self` (see the type docs for semantics).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.metrics {
            match (self.metrics.get_mut(name), v) {
                (None, v) => {
                    self.metrics.insert(name.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                // Same-name gauge: keep the left operand (merge is an
                // accumulation fold; the fold's first sighting wins).
                (Some(MetricValue::Gauge(_)), MetricValue::Gauge(_)) => {}
                (Some(_), _) => panic!("metric `{name}` merged across kinds"),
            }
        }
    }

    /// The counter value of `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value of `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram of `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition: one `# HELP` + `# TYPE` pair per
    /// family, then samples; histograms emit cumulative `_bucket{le="…"}`
    /// samples (non-empty buckets only) with the standard `_sum`/`_count`
    /// pair.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.metrics {
            out.push_str(&format!("# HELP {name} {}\n", crate::names::help(name)));
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_upper_bound(i)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// One JSON object keyed by metric name; histograms carry count, sum,
    /// p50/p95/p99 (upper-bucket-bound quantiles), and the non-empty
    /// buckets as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (name, v) in &self.metrics {
            w.key(name);
            match v {
                MetricValue::Counter(c) => {
                    w.begin_object();
                    w.key("type").string("counter");
                    w.key("value").u64(*c);
                    w.end_object();
                }
                MetricValue::Gauge(g) => {
                    w.begin_object();
                    w.key("type").string("gauge");
                    w.key("value").i64(*g);
                    w.end_object();
                }
                MetricValue::Histogram(h) => {
                    w.begin_object();
                    w.key("type").string("histogram");
                    w.key("count").u64(h.count);
                    w.key("sum").u64(h.sum);
                    for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                        w.key(label);
                        match h.quantile(q) {
                            Some(v) => w.u64(v),
                            None => w.null(),
                        };
                    }
                    w.key("buckets").begin_array();
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        w.begin_array();
                        w.u64(bucket_upper_bound(i));
                        w.u64(n);
                        w.end_array();
                    }
                    w.end_array();
                    w.end_object();
                }
            }
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("fix_test_total");
        let b = reg.counter("fix_test_total");
        a.add(2);
        b.add(3);
        assert_eq!(reg.snapshot().counter("fix_test_total"), Some(5));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("fix_test_total");
        reg.gauge("fix_test_total");
    }

    #[test]
    fn renders_prometheus_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("fix_queries_total").add(7);
        reg.gauge("fix_btree_height").set(3);
        let h = reg.histogram("fix_query_wall_ns");
        h.record(100);
        h.record(5000);
        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE fix_queries_total counter"));
        assert!(prom.contains("fix_queries_total 7"));
        assert!(prom.contains("fix_btree_height 3"));
        assert!(prom.contains("fix_query_wall_ns_count 2"));
        assert!(prom.contains("fix_query_wall_ns_bucket{le=\"+Inf\"} 2"));
        let json = reg.render_json();
        assert!(json.contains("\"fix_queries_total\":{\"type\":\"counter\",\"value\":7}"));
        assert!(json.contains("\"p95\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let mk = |n: u64| {
            let reg = MetricsRegistry::new();
            reg.counter("c").add(n);
            let h = reg.histogram("h");
            h.record(n);
            reg.snapshot()
        };
        let (a, b, c) = (mk(1), mk(10), mk(100));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counter("c"), Some(111));
        assert_eq!(left.histogram("h").unwrap().count, 3);
    }
}
