//! Fixed-bucket latency histograms with log₂ bucket boundaries.
//!
//! Bucket `i` holds values `v` with `2^i ≤ v < 2^(i+1)` (bucket 0
//! additionally holds 0 and 1, i.e. everything below 2). With 64 buckets
//! the histogram covers the full `u64` range, so a nanosecond-scaled
//! recording never saturates. Recording is three relaxed `fetch_add`s —
//! bucket, count, sum — with no locking; snapshots are plain arrays that
//! merge associatively (bucket-wise addition), so per-worker histograms
//! can be combined in any grouping with a bit-identical result.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets (covers all of `u64`).
pub const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of `u64` samples (by convention,
/// nanoseconds for `_ns`-suffixed metrics).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a value lands in: `floor(log2(v))`, with 0 and 1 in bucket 0.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (lock-free, relaxed).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Under concurrent writers the copy is only
    /// approximately consistent (like the live histogram itself); after
    /// writers quiesce it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data histogram state: mergeable, quantile-queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[i]` = samples in `[2^i, 2^(i+1))`).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges `other` into `self` (bucket-wise addition — associative and
    /// commutative, so any merge tree over per-worker snapshots yields the
    /// same result).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), resolved to the *upper bound*
    /// of the bucket holding the rank — a conservative (never
    /// underestimating) latency quantile. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we are after, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Mean sample value (`None` on an empty histogram).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// Exclusive upper bound of bucket `i` (`2^(i+1)`, saturating at the top).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 and 1 collapse into bucket 0; from 2 on, bucket = floor(log2).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_of((1 << 63) - 1), 62);
        assert_eq!(bucket_of(1 << 63), 63);
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        // p100 resolves to the upper bound of the 1000 bucket: 2^10.
        assert_eq!(s.quantile(1.0), Some(1024));
        // p20 is the first sample's bucket (values 0..2 → bound 2).
        assert_eq!(s.quantile(0.2), Some(2));
        assert!(s.quantile(0.5).unwrap() <= 4);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[1, 5, 9]), mk(&[2, 1 << 40]), mk(&[7]));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count, 6);
    }
}
