//! Flight recorder — a fixed-capacity ring of structured engine events.
//!
//! Counters say *how much*; the event ring says *what happened in what
//! order*. Every interesting lifecycle step — a commit's
//! validate→append→fsync phases, a WAL segment seal, an L0 freeze, a tier
//! merge, a compaction, a recovery replay, a buffer-pool eviction — records
//! one [`Event`]: a monotonic sequence number, a nanosecond timestamp
//! relative to the recorder's epoch, a [`Category`], a [`Severity`], an
//! optional duration, and a small key/value payload.
//!
//! The ring is sharded like the metric counters: writers append to a
//! per-thread shard under a shard-local mutex (uncontended in the common
//! case — the lock is held for one `VecDeque` push), and readers merge the
//! shards ordered by sequence number. Capacity is fixed at construction;
//! when a shard is full the oldest event in that shard is dropped and the
//! drop is counted. Two side lists survive ring churn:
//!
//! * the **retained list** keeps every `Warn`/`Error` event (recovery
//!   anomalies, corruption, append failures) up to its own bound, so a
//!   busy ring cannot wash away the one event that explains an incident;
//! * the **slow-op log** keeps spans whose duration met the configurable
//!   threshold ([`EventRecorder::set_slow_threshold_ns`]), payload intact.
//!
//! A recorder with capacity 0 is *disabled*: recording is a no-op and
//! [`EventRecorder::enabled`] lets hot paths skip building payloads
//! entirely, which is what keeps the recorder inside the write path's
//! overhead budget (see DESIGN.md §16).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonWriter;

/// Ring shards. Power of two; matches the counter sharding rationale —
/// enough that a realistic session fan-out rarely contends one lock.
const SHARDS: usize = 8;

/// Bound of the `Warn`+ retained list.
const RETAINED_CAP: usize = 256;

/// Bound of the slow-op log.
const SLOW_CAP: usize = 128;

/// How important an event is; retention keys off this ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume detail (pool evictions); first to churn out.
    Debug,
    /// Normal lifecycle steps (commits, seals, merges).
    Info,
    /// Anomalies the engine recovered from (torn tails, token mismatches).
    Warn,
    /// Detected corruption or lost durability.
    Error,
}

impl Severity {
    /// The lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Which subsystem an event belongs to; `fixdb events --category` filters
/// on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// `WriteBatch` commits (validate → append → fsync/ack).
    Commit,
    /// WAL mechanics: seals, group-commit flushes, append failures.
    Wal,
    /// Delta tiering: L0 freezes and size-tiered run merges.
    Tier,
    /// Compaction folding the delta stack into the base tree.
    Compact,
    /// Save/open persistence and checkpoints.
    Persist,
    /// Crash-recovery replay and its anomalies.
    Recovery,
    /// Buffer-pool evictions and CRC failures.
    Pool,
}

impl Category {
    /// The lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Commit => "commit",
            Category::Wal => "wal",
            Category::Tier => "tier",
            Category::Compact => "compact",
            Category::Persist => "persist",
            Category::Recovery => "recovery",
            Category::Pool => "pool",
        }
    }

    /// Parses a wire name back (for CLI filters).
    pub fn parse(s: &str) -> Option<Category> {
        Some(match s {
            "commit" => Category::Commit,
            "wal" => Category::Wal,
            "tier" => Category::Tier,
            "compact" => Category::Compact,
            "persist" => Category::Persist,
            "recovery" => Category::Recovery,
            "pool" => Category::Pool,
            _ => return None,
        })
    }
}

/// One payload value. Small by design: payloads are a handful of scalars
/// or short strings, not documents.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned scalar (counts, bytes, nanoseconds).
    U64(u64),
    /// Signed scalar.
    I64(i64),
    /// Ratio or rate.
    F64(f64),
    /// Short text (a segment file name, a reason).
    Str(String),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global monotonic sequence number (total order across shards).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch (its construction instant).
    pub ts_ns: u64,
    /// Subsystem.
    pub category: Category,
    /// Importance; `Warn`+ events are retained past ring churn.
    pub severity: Severity,
    /// Stable event name, dotted by convention (`wal.seal`, `tier.merge`).
    pub name: &'static str,
    /// Span duration, when the event closes a timed span.
    pub duration_ns: Option<u64>,
    /// Key/value payload, insertion-ordered.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Writes this event as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("seq").u64(self.seq);
        w.key("ts_ns").u64(self.ts_ns);
        w.key("category").string(self.category.name());
        w.key("severity").string(self.severity.name());
        w.key("name").string(self.name);
        match self.duration_ns {
            Some(d) => w.key("duration_ns").u64(d),
            None => w.key("duration_ns").null(),
        };
        w.key("fields").begin_object();
        for (k, v) in &self.fields {
            w.key(k);
            match v {
                FieldValue::U64(n) => w.u64(*n),
                FieldValue::I64(n) => w.i64(*n),
                FieldValue::F64(n) => w.f64(*n),
                FieldValue::Str(s) => w.string(s),
                FieldValue::Bool(b) => w.bool(*b),
            };
        }
        w.end_object();
        w.end_object();
    }

    /// This event as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

impl fmt::Display for Event {
    /// One human line: `[  12.345ms] info  wal    wal.seal (1.2ms) seg=3 …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}ms] {:<5} {:<8} {}",
            self.ts_ns as f64 / 1e6,
            self.severity.name(),
            self.category.name(),
            self.name
        )?;
        if let Some(d) = self.duration_ns {
            write!(f, " ({:.3}ms)", d as f64 / 1e6)?;
        }
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// The flight recorder: sharded bounded ring + retained list + slow-op log.
pub struct EventRecorder {
    epoch: Instant,
    seq: AtomicU64,
    /// The requested ring capacity (0 = recorder disabled).
    capacity: usize,
    /// Per-shard ring slice capacity (0 = recorder disabled).
    shard_cap: usize,
    shards: Vec<Mutex<VecDeque<Event>>>,
    retained: Mutex<VecDeque<Event>>,
    slow: Mutex<VecDeque<Event>>,
    slow_ns: AtomicU64,
    dropped: AtomicU64,
}

impl EventRecorder {
    /// A recorder holding at most `capacity` ring events (side lists have
    /// their own fixed bounds). Capacity 0 disables recording entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            capacity,
            shard_cap: capacity.div_ceil(SHARDS),
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            retained: Mutex::new(VecDeque::new()),
            slow: Mutex::new(VecDeque::new()),
            slow_ns: AtomicU64::new(u64::MAX),
            dropped: AtomicU64::new(0),
        }
    }

    /// A shared recorder (the usual shape — the database and its WAL and
    /// pool all hold the same one).
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Whether recording is on. Hot paths check this before building
    /// payload vectors.
    pub fn enabled(&self) -> bool {
        self.shard_cap > 0
    }

    /// The ring capacity this recorder was built with (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets the slow-op promotion threshold; spans with a duration of at
    /// least `ns` are copied to the slow-op log. `u64::MAX` disables.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-op promotion threshold.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Ring events dropped to make room (side lists don't count).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one instantaneous event. No-op when disabled.
    pub fn record(
        &self,
        category: Category,
        severity: Severity,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.record_inner(category, severity, name, None, fields);
    }

    /// Records a completed span of `duration_ns`. Promotes to the slow-op
    /// log when the duration meets the threshold. No-op when disabled.
    pub fn record_span(
        &self,
        category: Category,
        severity: Severity,
        name: &'static str,
        duration_ns: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.record_inner(category, severity, name, Some(duration_ns), fields);
    }

    /// Starts a timed span builder; `finish` records it.
    pub fn span(&self, category: Category, name: &'static str) -> Span<'_> {
        Span {
            rec: self,
            category,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    fn record_inner(
        &self,
        category: Category,
        severity: Severity,
        name: &'static str,
        duration_ns: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if !self.enabled() {
            return;
        }
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.now_ns(),
            category,
            severity,
            name,
            duration_ns,
            fields,
        };
        if severity >= Severity::Warn {
            let mut retained = self.retained.lock().expect("retained lock poisoned");
            if retained.len() >= RETAINED_CAP {
                retained.pop_front();
            }
            retained.push_back(event.clone());
        }
        if let Some(d) = duration_ns {
            if d >= self.slow_ns.load(Ordering::Relaxed) {
                let mut slow = self.slow.lock().expect("slow lock poisoned");
                if slow.len() >= SLOW_CAP {
                    slow.pop_front();
                }
                slow.push_back(event.clone());
            }
        }
        let mut shard = self.shards[shard_index()].lock().expect("shard poisoned");
        if shard.len() >= self.shard_cap {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
    }

    /// Every event still in the ring, merged with the retained `Warn`+
    /// list (deduplicated by sequence number), in sequence order. The ring
    /// is not consumed — repeated calls see overlapping windows, which is
    /// what lets `--follow` diff by `seq`.
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().expect("shard poisoned").iter().cloned());
        }
        out.extend(
            self.retained
                .lock()
                .expect("retained lock poisoned")
                .iter()
                .cloned(),
        );
        out.sort_by_key(|e| e.seq);
        out.dedup_by_key(|e| e.seq);
        out
    }

    /// The slow-op log, oldest first.
    pub fn slow_ops(&self) -> Vec<Event> {
        self.slow
            .lock()
            .expect("slow lock poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// An in-flight timed span; build fields, then [`Span::finish`] to record.
/// Dropping without finishing records nothing.
pub struct Span<'a> {
    rec: &'a EventRecorder,
    category: Category,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span<'_> {
    /// Attaches one payload field (skipped when the recorder is disabled,
    /// so callers can chain unconditionally).
    pub fn field(mut self, key: &'static str, value: FieldValue) -> Self {
        if self.rec.enabled() {
            self.fields.push((key, value));
        }
        self
    }

    /// Attaches an unsigned scalar field.
    pub fn u64(self, key: &'static str, value: u64) -> Self {
        self.field(key, FieldValue::U64(value))
    }

    /// Elapsed time since the span began.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records the span with its measured duration.
    pub fn finish(self, severity: Severity) {
        let d = self.elapsed_ns();
        self.rec
            .record_span(self.category, severity, self.name, d, self.fields);
    }
}

/// The calling thread's ring shard (same ticket scheme as the counter
/// shards: round-robin assignment on first use, no per-call hashing).
fn shard_index() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TICKET: usize = NEXT.fetch_add(1, Ordering::Relaxed) as usize;
    }
    TICKET.with(|t| t & (SHARDS - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> EventRecorder {
        // Capacity is split across shards; a single-threaded test writes
        // one shard only, so leave plenty of per-shard headroom.
        EventRecorder::new(128)
    }

    #[test]
    fn records_in_sequence_order() {
        let r = rec();
        for i in 0..10u64 {
            r.record(
                Category::Commit,
                Severity::Info,
                "commit",
                vec![("ops", FieldValue::U64(i))],
            );
        }
        let events = r.events();
        assert_eq!(events.len(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sorted by seq");
        assert_eq!(events[3].fields[0], ("ops", FieldValue::U64(3)));
        assert!(events.iter().all(|e| e.duration_ns.is_none()));
    }

    #[test]
    fn capacity_zero_disables_recording() {
        let r = EventRecorder::new(0);
        assert!(!r.enabled());
        r.record(Category::Wal, Severity::Error, "wal.append_failed", vec![]);
        r.span(Category::Commit, "commit").finish(Severity::Info);
        assert!(r.events().is_empty());
        assert!(r.slow_ops().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_but_retains_warnings() {
        let r = EventRecorder::new(8);
        r.record(
            Category::Recovery,
            Severity::Warn,
            "recovery.torn_tail",
            vec![("dropped_bytes", FieldValue::U64(17))],
        );
        // Flood the ring far past capacity from this one thread.
        for _ in 0..100 {
            r.record(Category::Pool, Severity::Debug, "pool.evict", vec![]);
        }
        assert!(r.dropped() > 0);
        let events = r.events();
        // The warning survived churn via the retained list…
        assert!(events.iter().any(|e| e.name == "recovery.torn_tail"));
        // …and still appears exactly once (dedup by seq).
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "recovery.torn_tail")
                .count(),
            1
        );
    }

    #[test]
    fn slow_ops_promote_at_threshold() {
        let r = rec();
        r.set_slow_threshold_ns(1_000_000);
        r.record_span(Category::Commit, Severity::Info, "commit", 500, vec![]);
        r.record_span(
            Category::Compact,
            Severity::Info,
            "compact",
            2_000_000,
            vec![("entries", FieldValue::U64(9))],
        );
        let slow = r.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "compact");
        assert_eq!(slow[0].fields[0], ("entries", FieldValue::U64(9)));
        // A 0 threshold promotes everything with a duration.
        r.set_slow_threshold_ns(0);
        r.record_span(Category::Commit, Severity::Info, "commit", 1, vec![]);
        assert_eq!(r.slow_ops().len(), 2);
    }

    #[test]
    fn concurrent_writers_keep_unique_ordered_seqs() {
        let r = EventRecorder::new(4096);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..100 {
                        r.record(Category::Commit, Severity::Info, "commit", vec![]);
                    }
                });
            }
        });
        let events = r.events();
        assert_eq!(events.len(), 800);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "unique and sorted");
    }

    #[test]
    fn span_builder_measures_and_records() {
        let r = rec();
        r.span(Category::Persist, "save")
            .u64("bytes", 42)
            .finish(Severity::Info);
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "save");
        assert!(events[0].duration_ns.is_some());
        assert_eq!(events[0].fields, vec![("bytes", FieldValue::U64(42))]);
    }

    #[test]
    fn json_and_display_render() {
        let r = rec();
        r.record_span(
            Category::Wal,
            Severity::Warn,
            "wal.seal",
            1500,
            vec![
                ("segment", FieldValue::Str("seg-000001.log".into())),
                ("records", FieldValue::U64(3)),
                ("ok", FieldValue::Bool(true)),
            ],
        );
        let e = &r.events()[0];
        let json = e.to_json();
        assert!(json.contains("\"category\":\"wal\""));
        assert!(json.contains("\"severity\":\"warn\""));
        assert!(json.contains("\"name\":\"wal.seal\""));
        assert!(json.contains("\"duration_ns\":1500"));
        assert!(json.contains("\"segment\":\"seg-000001.log\""));
        assert!(json.contains("\"records\":3"));
        assert!(json.contains("\"ok\":true"));
        let line = e.to_string();
        assert!(line.contains("wal.seal"));
        assert!(line.contains("records=3"));
    }

    #[test]
    fn category_names_round_trip() {
        for c in [
            Category::Commit,
            Category::Wal,
            Category::Tier,
            Category::Compact,
            Category::Persist,
            Category::Recovery,
            Category::Pool,
        ] {
            assert_eq!(Category::parse(c.name()), Some(c));
        }
        assert_eq!(Category::parse("nope"), None);
    }
}
