//! [`QueryTrace`] — what one query actually did, stage by stage.
//!
//! Algorithm 2's pipeline, as the serving layer runs it:
//!
//! ```text
//! parse → plan-cache probe → compile → eigenvalue computation
//!       → B-tree scan → candidate refinement
//! ```
//!
//! A trace is a flat list of [`StageRecord`]s in execution order. Cached
//! plans legitimately skip stages (a warm hit jumps from the probe
//! straight to the scan), so consumers look stages up by [`Stage`] rather
//! than by position. Parallel refinement records one wall-clock entry for
//! the stage plus per-worker durations in chunk order — the aggregation
//! order is deterministic even though the times themselves are wall
//! clock.

use std::fmt;
use std::time::Duration;

use crate::json::JsonWriter;

/// The stages of Algorithm 2's serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// XPath parsing plus normalization.
    Parse,
    /// Plan-cache lookup (raw and normalized spelling probes combined).
    CacheProbe,
    /// Twig-block decomposition of the normalized path.
    Compile,
    /// Eigenvalue (pruning-feature) computation for the blocks.
    Eigen,
    /// B-tree range scan for candidates.
    Scan,
    /// Candidate refinement (validation against primary storage).
    Refine,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::CacheProbe,
        Stage::Compile,
        Stage::Eigen,
        Stage::Scan,
        Stage::Refine,
    ];

    /// The stage's position in [`Stage::ALL`] (for handle arrays indexed
    /// in pipeline order).
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::CacheProbe => 1,
            Stage::Compile => 2,
            Stage::Eigen => 3,
            Stage::Scan => 4,
            Stage::Refine => 5,
        }
    }

    /// The stage's stable snake_case name (JSON field, display label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CacheProbe => "cache_probe",
            Stage::Compile => "compile",
            Stage::Eigen => "eigen",
            Stage::Scan => "scan",
            Stage::Refine => "refine",
        }
    }

    /// The registry histogram this stage's wall time is recorded under.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::Parse => "fix_stage_parse_ns",
            Stage::CacheProbe => "fix_stage_cache_probe_ns",
            Stage::Compile => "fix_stage_compile_ns",
            Stage::Eigen => "fix_stage_eigen_ns",
            Stage::Scan => "fix_stage_scan_ns",
            Stage::Refine => "fix_stage_refine_ns",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall-clock time the stage took.
    pub wall: Duration,
    /// The stage's item count, where one applies: candidates out of the
    /// scan, result rows out of refinement, twig blocks out of compile.
    pub items: Option<u64>,
    /// Cache-probe outcome ([`Stage::CacheProbe`] only).
    pub cache_hit: Option<bool>,
    /// Per-worker wall times in chunk order (parallel refinement only;
    /// empty for sequential stages).
    pub workers: Vec<Duration>,
}

/// The full trace of one query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query as submitted.
    pub query: String,
    /// Executed stages, in execution order.
    pub stages: Vec<StageRecord>,
    /// End-to-end wall time (set by the driver once the query finishes).
    pub total: Duration,
}

impl QueryTrace {
    /// An empty trace for `query`.
    pub fn new(query: &str) -> Self {
        Self {
            query: query.to_string(),
            stages: Vec::new(),
            total: Duration::ZERO,
        }
    }

    /// Appends a stage record and returns it for field fill-in.
    pub fn record(&mut self, stage: Stage, wall: Duration) -> &mut StageRecord {
        self.stages.push(StageRecord {
            stage,
            wall,
            items: None,
            cache_hit: None,
            workers: Vec::new(),
        });
        self.stages.last_mut().expect("just pushed")
    }

    /// The first record of `stage`, if it ran.
    pub fn stage(&self, stage: Stage) -> Option<&StageRecord> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Whether the plan-cache probe (if any) hit.
    pub fn cache_hit(&self) -> Option<bool> {
        self.stage(Stage::CacheProbe).and_then(|s| s.cache_hit)
    }

    /// The trace as one JSON object (`query`, `total_ns`, `stages` array
    /// with per-stage `wall_ns`, optional `items`/`cache_hit`, and
    /// `worker_ns` for parallel refinement).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the trace object into an existing [`JsonWriter`] (so callers
    /// can embed it in a larger document).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("query").string(&self.query);
        w.key("total_ns").u64(as_ns(self.total));
        w.key("stages").begin_array();
        for s in &self.stages {
            w.begin_object();
            w.key("stage").string(s.stage.name());
            w.key("wall_ns").u64(as_ns(s.wall));
            if let Some(items) = s.items {
                w.key("items").u64(items);
            }
            if let Some(hit) = s.cache_hit {
                w.key("cache_hit").bool(hit);
            }
            if !s.workers.is_empty() {
                w.key("worker_ns").begin_array();
                for d in &s.workers {
                    w.u64(as_ns(*d));
                }
                w.end_array();
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl fmt::Display for QueryTrace {
    /// Human-readable per-stage breakdown, one line per stage.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace: {}", self.query)?;
        for s in &self.stages {
            write!(f, "  {:<12} {:>12?}", s.stage.name(), s.wall)?;
            if let Some(items) = s.items {
                write!(f, "  items {items}")?;
            }
            if let Some(hit) = s.cache_hit {
                write!(f, "  {}", if hit { "hit" } else { "miss" })?;
            }
            if !s.workers.is_empty() {
                write!(f, "  workers {}", s.workers.len())?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  {:<12} {:>12?}", "total", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_looks_up_stages() {
        let mut t = QueryTrace::new("//a/b");
        t.record(Stage::CacheProbe, Duration::from_nanos(50))
            .cache_hit = Some(false);
        t.record(Stage::Parse, Duration::from_micros(2));
        let r = t.record(Stage::Scan, Duration::from_micros(10));
        r.items = Some(42);
        t.total = Duration::from_micros(20);
        assert_eq!(t.cache_hit(), Some(false));
        assert_eq!(t.stage(Stage::Scan).unwrap().items, Some(42));
        assert!(t.stage(Stage::Refine).is_none());
    }

    #[test]
    fn renders_display_and_json() {
        let mut t = QueryTrace::new("//a[b]/c");
        t.record(Stage::Parse, Duration::from_nanos(1500));
        let r = t.record(Stage::Refine, Duration::from_micros(7));
        r.items = Some(3);
        r.workers = vec![Duration::from_micros(3), Duration::from_micros(4)];
        t.total = Duration::from_micros(9);
        let text = t.to_string();
        assert!(text.contains("parse"));
        assert!(text.contains("workers 2"));
        let json = t.to_json();
        assert!(json.contains("\"stage\":\"refine\""));
        assert!(json.contains("\"items\":3"));
        assert!(json.contains("\"worker_ns\":[3000,4000]"));
        assert!(json.contains("\"total_ns\":9000"));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["parse", "cache_probe", "compile", "eigen", "scan", "refine"]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(s.metric_name().starts_with("fix_stage_"));
            assert!(s.metric_name().ends_with("_ns"));
        }
    }
}
