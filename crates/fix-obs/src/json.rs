//! A minimal JSON writer — just enough for rendering metrics and traces
//! without pulling a serialization dependency into the workspace.
//!
//! [`JsonWriter`] builds one UTF-8 JSON document into a `String`. Nesting
//! is the caller's responsibility (`begin_object` / `end_object` must
//! pair); commas are inserted automatically between values at the same
//! level.

/// Escapes `s` per RFC 8259 into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// An appending JSON builder with automatic comma placement.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether a value has already been written at the current level.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self {
            buf: String::new(),
            needs_comma: vec![false],
        }
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Writes an object key (inside an object, before its value).
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
        // The upcoming value must not add its own comma.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes `}`.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        if let Some(last) = self.needs_comma.last_mut() {
            *last = true;
        }
        self
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes `]`.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        if let Some(last) = self.needs_comma.last_mut() {
            *last = true;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        escape_into(s, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Writes a float value (`null` for non-finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push_str("null");
        self
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("q\"1\"");
        w.key("n").u64(3);
        w.key("ok").bool(true);
        w.key("stages").begin_array();
        w.begin_object();
        w.key("s").string("parse");
        w.key("x").null();
        w.end_object();
        w.begin_object();
        w.key("s").string("scan");
        w.key("f").f64(0.5);
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"q\"1\"","n":3,"ok":true,"stages":[{"s":"parse","x":null},{"s":"scan","f":0.5}]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        escape_into("a\nb\u{1}\\", &mut out);
        assert_eq!(out, "a\\nb\\u0001\\\\");
    }
}
